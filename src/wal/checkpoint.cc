#include "wal/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "core/database.h"
#include "storage/pager.h"
#include "wal/serializer.h"

namespace bdbms {

namespace {

constexpr char kMagic[8] = {'B', 'D', 'B', 'M', 'S', 'C', 'P', '1'};
constexpr uint32_t kFileVersion = 1;
// v1: full row dump per table. v2: adds a checkpoint generation + heap-file
// name counter, and paged tables record a heap-file reference (name + page
// count) instead of dumping rows — the incremental-checkpoint format.
constexpr uint32_t kSnapshotVersion = 2;

// Header page layout: magic[8], u32 file version, u64 payload length,
// u32 payload CRC-32.
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 4;

}  // namespace

Status WriteCheckpointFile(WalEnv* env, const std::string& dir,
                           std::string_view payload) {
  const std::string tmp = dir + "/" + kCheckpointTmpFileName;
  const std::string final_path = dir + "/" + kCheckpointFileName;
  if (env->FileExists(tmp)) {
    BDBMS_RETURN_IF_ERROR(env->RemoveFile(tmp));
  }
  {
    BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager, Pager::OpenFile(tmp));

    std::string header;
    BinaryWriter w(&header);
    header.append(kMagic, sizeof(kMagic));
    w.U32(kFileVersion);
    w.U64(payload.size());
    w.U32(Crc32(payload));

    Page page;
    page.Zero();
    std::memcpy(page.bytes(), header.data(), kHeaderBytes);
    BDBMS_RETURN_IF_ERROR(pager->AppendPage(page).status());

    for (size_t off = 0; off < payload.size(); off += kPageSize) {
      size_t n = std::min<size_t>(kPageSize, payload.size() - off);
      page.Zero();
      std::memcpy(page.bytes(), payload.data() + off, n);
      BDBMS_RETURN_IF_ERROR(pager->AppendPage(page).status());
    }
    // The snapshot must be on stable storage *before* the rename makes it
    // the checkpoint other state (the truncated WAL) depends on.
    BDBMS_RETURN_IF_ERROR(pager->Sync());
  }
  BDBMS_RETURN_IF_ERROR(env->RenameFile(tmp, final_path));
  return env->SyncDir(dir);
}

Result<std::string> ReadCheckpointFile(const std::string& dir) {
  const std::string path = dir + "/" + kCheckpointFileName;
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager, Pager::OpenFile(path));
  if (pager->page_count() == 0) {
    return Status::Corruption(path + ": empty checkpoint file");
  }
  Page page;
  BDBMS_RETURN_IF_ERROR(pager->ReadPage(0, &page));
  if (std::memcmp(page.bytes(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": bad checkpoint magic");
  }
  BinaryReader header(std::string_view(
      reinterpret_cast<const char*>(page.bytes()) + sizeof(kMagic),
      kHeaderBytes - sizeof(kMagic)));
  BDBMS_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  if (version != kFileVersion) {
    return Status::Corruption(path + ": unsupported checkpoint version " +
                              std::to_string(version));
  }
  BDBMS_ASSIGN_OR_RETURN(uint64_t payload_len, header.U64());
  BDBMS_ASSIGN_OR_RETURN(uint32_t payload_crc, header.U32());
  uint64_t capacity =
      static_cast<uint64_t>(pager->page_count() - 1) * kPageSize;
  if (payload_len > capacity) {
    return Status::Corruption(path + ": payload length " +
                              std::to_string(payload_len) +
                              " exceeds file capacity");
  }
  std::string payload;
  payload.reserve(payload_len);
  for (PageId pid = 1;
       pid < pager->page_count() && payload.size() < payload_len; ++pid) {
    BDBMS_RETURN_IF_ERROR(pager->ReadPage(pid, &page));
    size_t n = std::min<uint64_t>(kPageSize, payload_len - payload.size());
    payload.append(reinterpret_cast<const char*>(page.bytes()), n);
  }
  if (payload.size() != payload_len) {
    return Status::Corruption(path + ": checkpoint file truncated");
  }
  if (Crc32(payload) != payload_crc) {
    return Status::Corruption(path + ": checkpoint payload CRC mismatch");
  }
  return payload;
}

// ---------------------------------------------------------------------------
// Snapshot payload: the full statement-driven engine state.
// ---------------------------------------------------------------------------

namespace {

void WriteRow(BinaryWriter* w, const Row& row) {
  w->U32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) w->Val(v);
}

Result<Row> ReadRow(BinaryReader* r) {
  BDBMS_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BDBMS_ASSIGN_OR_RETURN(Value v, r->Val());
    row.push_back(std::move(v));
  }
  return row;
}

void WriteOptValue(BinaryWriter* w, const std::optional<Value>& v) {
  w->U8(v.has_value() ? 1 : 0);
  if (v.has_value()) w->Val(*v);
}

Result<std::optional<Value>> ReadOptValue(BinaryReader* r) {
  BDBMS_ASSIGN_OR_RETURN(uint8_t has, r->U8());
  if (!has) return std::optional<Value>();
  BDBMS_ASSIGN_OR_RETURN(Value v, r->Val());
  return std::optional<Value>(std::move(v));
}

}  // namespace

Result<std::string> Database::SerializeSnapshot(uint64_t last_lsn,
                                                uint64_t gen) const {
  std::string out;
  BinaryWriter w(&out);
  w.U32(kSnapshotVersion);
  w.U64(last_lsn);
  w.U64(clock_.Peek());
  // Paged-heap globals: the generation the heaps staged their dirty pages
  // under (journal application key) and the heap-file name counter.
  w.U64(gen);
  w.U64(paged_ ? paged_->next_heap_file : 0);

  // --- user tables: schema, heap rows, annotations, indexes, stats ------
  std::vector<std::string> table_names = catalog_.ListTables();
  w.U32(static_cast<uint32_t>(table_names.size()));
  for (const std::string& name : table_names) {
    BDBMS_ASSIGN_OR_RETURN(TableSchema schema, catalog_.GetSchema(name));
    w.Str(name);
    w.U32(static_cast<uint32_t>(schema.num_columns()));
    for (const ColumnDef& col : schema.columns()) {
      w.Str(col.name);
      w.U8(static_cast<uint8_t>(col.type));
    }

    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::Internal("catalog table " + name + " has no storage");
    }
    const Table& table = *it->second;
    w.U8(table.paged() ? 1 : 0);
    if (table.paged()) {
      // The rows already live durably in the heap file (CheckpointPrepare
      // staged every dirty page under `gen` before this runs); record a
      // reference instead of dumping them. row_count doubles as a restore
      // sanity check.
      w.Str(table.heap_file_name());
      w.U32(table.heap_page_count());
      w.U64(table.next_row_id());
      w.U64(table.row_count());
    } else {
      w.U64(table.next_row_id());
      w.U64(table.row_count());
      Status scan = table.Scan([&](RowId row_id, const Row& row) {
        w.U64(row_id);
        WriteRow(&w, row);
        return Status::Ok();
      });
      BDBMS_RETURN_IF_ERROR(scan);
    }

    std::vector<AnnotationTableInfo> anns = catalog_.ListAnnotationTables(name);
    w.U32(static_cast<uint32_t>(anns.size()));
    for (const AnnotationTableInfo& info : anns) {
      w.Str(info.name);
      w.U8(info.is_provenance ? 1 : 0);
      BDBMS_ASSIGN_OR_RETURN(AnnotationTable * ann,
                             annotations_.Get(name, info.name));
      w.U64(ann->next_id());
      w.U64(ann->count());
      Status body_err = Status::Ok();
      ann->ForEach(/*include_archived=*/true, [&](const AnnotationMeta& meta) {
        w.U64(meta.id);
        w.U64(meta.timestamp);
        w.U8(meta.archived ? 1 : 0);
        w.Str(meta.author);
        w.U32(static_cast<uint32_t>(meta.regions.size()));
        for (const Region& r : meta.regions) {
          w.U64(r.columns);
          w.U64(r.row_begin);
          w.U64(r.row_end);
        }
        auto body = ann->Body(meta.id);
        if (!body.ok()) {
          if (body_err.ok()) body_err = body.status();
          w.Str("");
          return;
        }
        w.Str(*body);
      });
      BDBMS_RETURN_IF_ERROR(body_err);
    }

    std::vector<IndexInfo> indexes = catalog_.ListIndexes(name);
    w.U32(static_cast<uint32_t>(indexes.size()));
    for (const IndexInfo& idx : indexes) {
      w.Str(idx.name);
      w.U8(static_cast<uint8_t>(idx.kind));
      w.U32(static_cast<uint32_t>(idx.columns.size()));
      for (const std::string& col : idx.columns) w.Str(col);
    }

    const TableStats* stats = catalog_.GetStats(name);
    w.U8(stats ? 1 : 0);
    if (stats) {
      w.U64(stats->row_count);
      w.U32(static_cast<uint32_t>(stats->columns.size()));
      for (const ColumnStats& cs : stats->columns) {
        w.U64(cs.non_null);
        w.U64(cs.null_count);
        w.U64(cs.ndv);
        WriteOptValue(&w, cs.min);
        WriteOptValue(&w, cs.max);
        w.U8(cs.histogram.has_value() ? 1 : 0);
        if (cs.histogram) {
          w.F64(cs.histogram->lo);
          w.F64(cs.histogram->hi);
          w.U64(cs.histogram->total);
          w.U32(static_cast<uint32_t>(cs.histogram->counts.size()));
          for (uint64_t c : cs.histogram->counts) w.U64(c);
        }
      }
    }
  }

  // --- deletion log (kept even for since-dropped tables) -----------------
  w.U32(static_cast<uint32_t>(deletion_log_.size()));
  for (const auto& [tname, entries] : deletion_log_) {
    w.Str(tname);
    w.U32(static_cast<uint32_t>(entries.size()));
    for (const DeletionLogEntry& e : entries) {
      w.U64(e.row);
      WriteRow(&w, e.old_values);
      w.Str(e.annotation);
      w.Str(e.issuer);
      w.U64(e.timestamp);
    }
  }

  // --- dependency rules + outdated bitmaps -------------------------------
  const auto& rules = dependencies_.rules();
  w.U32(static_cast<uint32_t>(rules.size()));
  for (const auto& [rname, rule] : rules) {
    w.Str(rule.name);
    w.U32(static_cast<uint32_t>(rule.sources.size()));
    for (const ColumnRef& src : rule.sources) {
      w.Str(src.table);
      w.Str(src.column);
    }
    w.Str(rule.target.table);
    w.Str(rule.target.column);
    w.Str(rule.procedure);
    w.U8(rule.join.has_value() ? 1 : 0);
    if (rule.join) {
      w.Str(rule.join->source_key_column);
      w.Str(rule.join->target_key_column);
    }
  }
  std::vector<std::pair<std::string, const OutdatedBitmap*>> bitmaps;
  for (const std::string& name : table_names) {
    const OutdatedBitmap* bm = dependencies_.FindBitmap(name);
    if (bm != nullptr && !bm->entries().empty()) bitmaps.emplace_back(name, bm);
  }
  w.U32(static_cast<uint32_t>(bitmaps.size()));
  for (const auto& [tname, bm] : bitmaps) {
    w.Str(tname);
    w.U64(bm->entries().size());
    for (const auto& [row, mask] : bm->entries()) {
      w.U64(row);
      w.U64(mask);
    }
  }

  // --- access control ----------------------------------------------------
  auto write_string_set = [&w](const std::set<std::string>& set) {
    w.U32(static_cast<uint32_t>(set.size()));
    for (const std::string& s : set) w.Str(s);
  };
  write_string_set(access_.users());
  write_string_set(access_.superusers());
  w.U32(static_cast<uint32_t>(access_.group_members().size()));
  for (const auto& [group, members] : access_.group_members()) {
    w.Str(group);
    write_string_set(members);
  }
  w.U32(static_cast<uint32_t>(access_.grants().size()));
  for (const auto& [key, privs] : access_.grants()) {
    w.Str(key.first);   // principal
    w.Str(key.second);  // table
    w.U32(static_cast<uint32_t>(privs.size()));
    for (Privilege p : privs) w.U8(static_cast<uint8_t>(p));
  }

  // --- provenance system agents ------------------------------------------
  write_string_set(provenance_.system_agents());

  // --- approvals ---------------------------------------------------------
  w.U32(static_cast<uint32_t>(approvals_.configs().size()));
  for (const auto& [tname, cfg] : approvals_.configs()) {
    w.Str(tname);
    w.U8(cfg.enabled ? 1 : 0);
    w.U64(cfg.columns);
    w.Str(cfg.approver);
  }
  w.U32(static_cast<uint32_t>(approvals_.log().size()));
  for (const auto& [op_id, op] : approvals_.log()) {
    w.U64(op.op_id);
    w.U8(static_cast<uint8_t>(op.type));
    w.U8(static_cast<uint8_t>(op.state));
    w.Str(op.table);
    w.U64(op.row);
    w.Str(op.issuer);
    w.U64(op.timestamp);
    WriteRow(&w, op.old_row);
    WriteRow(&w, op.new_row);
    w.Str(op.inverse_sql);
  }
  w.U64(approvals_.next_op_id());

  return out;
}

Status Database::LoadSnapshot(std::string_view payload, uint64_t* last_lsn) {
  BinaryReader r(payload);
  BDBMS_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != 1 && version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(version));
  }
  BDBMS_ASSIGN_OR_RETURN(*last_lsn, r.U64());
  BDBMS_ASSIGN_OR_RETURN(uint64_t clock_next, r.U64());
  uint64_t gen = 0;
  if (version >= 2) {
    BDBMS_ASSIGN_OR_RETURN(gen, r.U64());
    BDBMS_ASSIGN_OR_RETURN(uint64_t next_heap_file, r.U64());
    if (paged_) {
      paged_->checkpoint_gen = gen;
      paged_->next_heap_file = next_heap_file;
    }
  }

  // --- user tables -------------------------------------------------------
  BDBMS_ASSIGN_OR_RETURN(uint32_t n_tables, r.U32());
  for (uint32_t t = 0; t < n_tables; ++t) {
    BDBMS_ASSIGN_OR_RETURN(std::string name, r.Str());
    TableSchema schema(name);
    BDBMS_ASSIGN_OR_RETURN(uint32_t n_cols, r.U32());
    for (uint32_t c = 0; c < n_cols; ++c) {
      BDBMS_ASSIGN_OR_RETURN(std::string col_name, r.Str());
      BDBMS_ASSIGN_OR_RETURN(uint8_t type, r.U8());
      BDBMS_RETURN_IF_ERROR(
          schema.AddColumn(col_name, static_cast<DataType>(type)));
    }
    BDBMS_RETURN_IF_ERROR(catalog_.CreateTable(schema));
    uint8_t paged_table = 0;
    if (version >= 2) {
      BDBMS_ASSIGN_OR_RETURN(paged_table, r.U8());
    }
    std::unique_ptr<Table> table;
    if (paged_table) {
      BDBMS_ASSIGN_OR_RETURN(std::string heap_name, r.Str());
      BDBMS_ASSIGN_OR_RETURN(uint32_t heap_pages, r.U32());
      BDBMS_ASSIGN_OR_RETURN(uint64_t next_row_id, r.U64());
      BDBMS_ASSIGN_OR_RETURN(uint64_t row_cnt, r.U64());
      if (paged_ == nullptr) {
        return Status::Corruption("snapshot references paged heap " +
                                  heap_name +
                                  " but no heap directory is attached");
      }
      const std::string path = paged_->heap_dir + "/" + heap_name;
      // Repair the heap to exactly the committed checkpoint's state
      // (apply or discard a leftover redo journal, cut provisional
      // extensions, drop the overlay) before scanning it.
      BDBMS_RETURN_IF_ERROR(
          Pager::RecoverPagedHeap(paged_->env, path, gen, heap_pages));
      BDBMS_ASSIGN_OR_RETURN(
          table, Table::OpenPaged(schema, paged_->env, path,
                                  paged_->pool_pages));
      table->set_readahead_pages(paged_->readahead_pages);
      if (table->row_count() != row_cnt) {
        return Status::Corruption(
            "paged heap " + heap_name + " holds " +
            std::to_string(table->row_count()) +
            " rows, checkpoint records " + std::to_string(row_cnt));
      }
      table->AdvanceNextRowId(next_row_id);
    } else {
      BDBMS_ASSIGN_OR_RETURN(table, Table::CreateInMemory(schema));
      BDBMS_ASSIGN_OR_RETURN(uint64_t next_row_id, r.U64());
      BDBMS_ASSIGN_OR_RETURN(uint64_t n_rows, r.U64());
      for (uint64_t i = 0; i < n_rows; ++i) {
        BDBMS_ASSIGN_OR_RETURN(uint64_t row_id, r.U64());
        BDBMS_ASSIGN_OR_RETURN(Row row, ReadRow(&r));
        BDBMS_RETURN_IF_ERROR(table->InsertWithRowId(row_id, std::move(row)));
      }
      table->AdvanceNextRowId(next_row_id);
    }
    tables_[name] = std::move(table);

    BDBMS_ASSIGN_OR_RETURN(uint32_t n_ann, r.U32());
    for (uint32_t a = 0; a < n_ann; ++a) {
      BDBMS_ASSIGN_OR_RETURN(std::string ann_name, r.Str());
      BDBMS_ASSIGN_OR_RETURN(uint8_t is_prov, r.U8());
      BDBMS_RETURN_IF_ERROR(
          catalog_.CreateAnnotationTable(name, ann_name, is_prov != 0));
      BDBMS_RETURN_IF_ERROR(annotations_.CreateAnnotationTable(name, ann_name));
      BDBMS_ASSIGN_OR_RETURN(AnnotationTable * ann,
                             annotations_.Get(name, ann_name));
      BDBMS_ASSIGN_OR_RETURN(uint64_t next_ann_id, r.U64());
      BDBMS_ASSIGN_OR_RETURN(uint64_t n_annotations, r.U64());
      for (uint64_t i = 0; i < n_annotations; ++i) {
        AnnotationMeta meta;
        BDBMS_ASSIGN_OR_RETURN(meta.id, r.U64());
        BDBMS_ASSIGN_OR_RETURN(meta.timestamp, r.U64());
        BDBMS_ASSIGN_OR_RETURN(uint8_t archived, r.U8());
        meta.archived = archived != 0;
        BDBMS_ASSIGN_OR_RETURN(meta.author, r.Str());
        BDBMS_ASSIGN_OR_RETURN(uint32_t n_regions, r.U32());
        for (uint32_t g = 0; g < n_regions; ++g) {
          Region region;
          BDBMS_ASSIGN_OR_RETURN(region.columns, r.U64());
          BDBMS_ASSIGN_OR_RETURN(region.row_begin, r.U64());
          BDBMS_ASSIGN_OR_RETURN(region.row_end, r.U64());
          meta.regions.push_back(region);
        }
        BDBMS_ASSIGN_OR_RETURN(std::string body, r.Str());
        BDBMS_RETURN_IF_ERROR(ann->RestoreAnnotation(meta, body));
      }
      if (next_ann_id != ann->next_id()) {
        return Status::Corruption("annotation table " + name + "." +
                                  ann_name + ": next id diverged on restore");
      }
    }

    BDBMS_ASSIGN_OR_RETURN(uint32_t n_idx, r.U32());
    for (uint32_t i = 0; i < n_idx; ++i) {
      BDBMS_ASSIGN_OR_RETURN(std::string idx_name, r.Str());
      BDBMS_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
      BDBMS_ASSIGN_OR_RETURN(uint32_t n_key_cols, r.U32());
      std::vector<std::string> columns;
      for (uint32_t c = 0; c < n_key_cols; ++c) {
        BDBMS_ASSIGN_OR_RETURN(std::string col, r.Str());
        columns.push_back(std::move(col));
      }
      BDBMS_RETURN_IF_ERROR(catalog_.CreateIndex(
          name, idx_name, columns, static_cast<IndexKind>(kind)));
      Table* table_ptr = tables_[name].get();
      std::vector<size_t> col_indices;
      for (const std::string& col : columns) {
        BDBMS_ASSIGN_OR_RETURN(size_t idx,
                               table_ptr->schema().ColumnIndex(col));
        col_indices.push_back(idx);
      }
      if (static_cast<IndexKind>(kind) == IndexKind::kSpGist) {
        BDBMS_RETURN_IF_ERROR(
            table_ptr->CreateSequenceIndex(idx_name, col_indices.front()));
      } else {
        BDBMS_RETURN_IF_ERROR(
            table_ptr->CreateIndex(idx_name, std::move(col_indices)));
      }
    }

    BDBMS_ASSIGN_OR_RETURN(uint8_t has_stats, r.U8());
    if (has_stats) {
      TableStats stats;
      BDBMS_ASSIGN_OR_RETURN(stats.row_count, r.U64());
      BDBMS_ASSIGN_OR_RETURN(uint32_t n_stat_cols, r.U32());
      for (uint32_t c = 0; c < n_stat_cols; ++c) {
        ColumnStats cs;
        BDBMS_ASSIGN_OR_RETURN(cs.non_null, r.U64());
        BDBMS_ASSIGN_OR_RETURN(cs.null_count, r.U64());
        BDBMS_ASSIGN_OR_RETURN(cs.ndv, r.U64());
        BDBMS_ASSIGN_OR_RETURN(cs.min, ReadOptValue(&r));
        BDBMS_ASSIGN_OR_RETURN(cs.max, ReadOptValue(&r));
        BDBMS_ASSIGN_OR_RETURN(uint8_t has_hist, r.U8());
        if (has_hist) {
          Histogram h;
          BDBMS_ASSIGN_OR_RETURN(h.lo, r.F64());
          BDBMS_ASSIGN_OR_RETURN(h.hi, r.F64());
          BDBMS_ASSIGN_OR_RETURN(h.total, r.U64());
          BDBMS_ASSIGN_OR_RETURN(uint32_t n_buckets, r.U32());
          for (uint32_t b = 0; b < n_buckets; ++b) {
            BDBMS_ASSIGN_OR_RETURN(uint64_t count, r.U64());
            h.counts.push_back(count);
          }
          cs.histogram = std::move(h);
        }
        stats.columns.push_back(std::move(cs));
      }
      BDBMS_RETURN_IF_ERROR(catalog_.SetStats(name, std::move(stats)));
    }
  }

  // --- deletion log ------------------------------------------------------
  BDBMS_ASSIGN_OR_RETURN(uint32_t n_dl, r.U32());
  for (uint32_t i = 0; i < n_dl; ++i) {
    BDBMS_ASSIGN_OR_RETURN(std::string tname, r.Str());
    BDBMS_ASSIGN_OR_RETURN(uint32_t n_entries, r.U32());
    std::vector<DeletionLogEntry>& entries = deletion_log_[tname];
    for (uint32_t e = 0; e < n_entries; ++e) {
      DeletionLogEntry entry;
      BDBMS_ASSIGN_OR_RETURN(entry.row, r.U64());
      BDBMS_ASSIGN_OR_RETURN(entry.old_values, ReadRow(&r));
      BDBMS_ASSIGN_OR_RETURN(entry.annotation, r.Str());
      BDBMS_ASSIGN_OR_RETURN(entry.issuer, r.Str());
      BDBMS_ASSIGN_OR_RETURN(entry.timestamp, r.U64());
      entries.push_back(std::move(entry));
    }
  }

  // --- dependency rules + outdated bitmaps -------------------------------
  BDBMS_ASSIGN_OR_RETURN(uint32_t n_rules, r.U32());
  for (uint32_t i = 0; i < n_rules; ++i) {
    DependencyRule rule;
    BDBMS_ASSIGN_OR_RETURN(rule.name, r.Str());
    BDBMS_ASSIGN_OR_RETURN(uint32_t n_src, r.U32());
    for (uint32_t s = 0; s < n_src; ++s) {
      ColumnRef src;
      BDBMS_ASSIGN_OR_RETURN(src.table, r.Str());
      BDBMS_ASSIGN_OR_RETURN(src.column, r.Str());
      rule.sources.push_back(std::move(src));
    }
    BDBMS_ASSIGN_OR_RETURN(rule.target.table, r.Str());
    BDBMS_ASSIGN_OR_RETURN(rule.target.column, r.Str());
    BDBMS_ASSIGN_OR_RETURN(rule.procedure, r.Str());
    BDBMS_ASSIGN_OR_RETURN(uint8_t has_join, r.U8());
    if (has_join) {
      KeyJoin join;
      BDBMS_ASSIGN_OR_RETURN(join.source_key_column, r.Str());
      BDBMS_ASSIGN_OR_RETURN(join.target_key_column, r.Str());
      rule.join = std::move(join);
    }
    Status added = dependencies_.AddRule(std::move(rule));
    if (!added.ok()) {
      return Status::Corruption(
          "checkpoint restore: dependency rule rejected (" +
          added.message() +
          ") — procedures must be re-registered via "
          "DurabilityOptions::bootstrap before recovery");
    }
  }
  BDBMS_ASSIGN_OR_RETURN(uint32_t n_bitmaps, r.U32());
  for (uint32_t i = 0; i < n_bitmaps; ++i) {
    BDBMS_ASSIGN_OR_RETURN(std::string tname, r.Str());
    BDBMS_ASSIGN_OR_RETURN(OutdatedBitmap * bitmap,
                           dependencies_.BitmapFor(tname));
    BDBMS_ASSIGN_OR_RETURN(uint64_t n_marks, r.U64());
    for (uint64_t m = 0; m < n_marks; ++m) {
      BDBMS_ASSIGN_OR_RETURN(uint64_t row, r.U64());
      BDBMS_ASSIGN_OR_RETURN(uint64_t mask, r.U64());
      for (size_t col = 0; col < kMaxColumns; ++col) {
        if (mask & ColumnBit(col)) bitmap->Mark(row, col);
      }
    }
  }

  // --- access control ----------------------------------------------------
  auto read_string_set = [&r]() -> Result<std::vector<std::string>> {
    BDBMS_ASSIGN_OR_RETURN(uint32_t n, r.U32());
    std::vector<std::string> out;
    for (uint32_t i = 0; i < n; ++i) {
      BDBMS_ASSIGN_OR_RETURN(std::string s, r.Str());
      out.push_back(std::move(s));
    }
    return out;
  };
  BDBMS_ASSIGN_OR_RETURN(std::vector<std::string> users, read_string_set());
  for (const std::string& u : users) {
    BDBMS_RETURN_IF_ERROR(access_.CreateUser(u));
  }
  BDBMS_ASSIGN_OR_RETURN(std::vector<std::string> superusers,
                         read_string_set());
  for (const std::string& u : superusers) access_.AddSuperuser(u);
  BDBMS_ASSIGN_OR_RETURN(uint32_t n_groups, r.U32());
  for (uint32_t i = 0; i < n_groups; ++i) {
    BDBMS_ASSIGN_OR_RETURN(std::string group, r.Str());
    BDBMS_RETURN_IF_ERROR(access_.CreateGroup(group));
    BDBMS_ASSIGN_OR_RETURN(std::vector<std::string> members,
                           read_string_set());
    for (const std::string& m : members) {
      BDBMS_RETURN_IF_ERROR(access_.AddToGroup(m, group));
    }
  }
  BDBMS_ASSIGN_OR_RETURN(uint32_t n_grants, r.U32());
  for (uint32_t i = 0; i < n_grants; ++i) {
    BDBMS_ASSIGN_OR_RETURN(std::string principal, r.Str());
    BDBMS_ASSIGN_OR_RETURN(std::string tname, r.Str());
    BDBMS_ASSIGN_OR_RETURN(uint32_t n_privs, r.U32());
    for (uint32_t p = 0; p < n_privs; ++p) {
      BDBMS_ASSIGN_OR_RETURN(uint8_t priv, r.U8());
      BDBMS_RETURN_IF_ERROR(
          access_.Grant(principal, tname, static_cast<Privilege>(priv)));
    }
  }

  // --- provenance system agents ------------------------------------------
  BDBMS_ASSIGN_OR_RETURN(std::vector<std::string> agents, read_string_set());
  for (const std::string& a : agents) provenance_.RegisterSystemAgent(a);

  // --- approvals ---------------------------------------------------------
  BDBMS_ASSIGN_OR_RETURN(uint32_t n_configs, r.U32());
  for (uint32_t i = 0; i < n_configs; ++i) {
    BDBMS_ASSIGN_OR_RETURN(std::string tname, r.Str());
    ApprovalConfig cfg;
    BDBMS_ASSIGN_OR_RETURN(uint8_t enabled, r.U8());
    cfg.enabled = enabled != 0;
    BDBMS_ASSIGN_OR_RETURN(cfg.columns, r.U64());
    BDBMS_ASSIGN_OR_RETURN(cfg.approver, r.Str());
    approvals_.RestoreConfig(tname, std::move(cfg));
  }
  BDBMS_ASSIGN_OR_RETURN(uint32_t n_ops, r.U32());
  for (uint32_t i = 0; i < n_ops; ++i) {
    LoggedOperation op;
    BDBMS_ASSIGN_OR_RETURN(op.op_id, r.U64());
    BDBMS_ASSIGN_OR_RETURN(uint8_t type, r.U8());
    op.type = static_cast<OpType>(type);
    BDBMS_ASSIGN_OR_RETURN(uint8_t state, r.U8());
    op.state = static_cast<OpState>(state);
    BDBMS_ASSIGN_OR_RETURN(op.table, r.Str());
    BDBMS_ASSIGN_OR_RETURN(op.row, r.U64());
    BDBMS_ASSIGN_OR_RETURN(op.issuer, r.Str());
    BDBMS_ASSIGN_OR_RETURN(op.timestamp, r.U64());
    BDBMS_ASSIGN_OR_RETURN(op.old_row, ReadRow(&r));
    BDBMS_ASSIGN_OR_RETURN(op.new_row, ReadRow(&r));
    BDBMS_ASSIGN_OR_RETURN(op.inverse_sql, r.Str());
    BDBMS_RETURN_IF_ERROR(approvals_.RestoreOperation(std::move(op)));
  }
  BDBMS_ASSIGN_OR_RETURN(uint64_t next_op_id, r.U64());
  approvals_.RestoreNextOpId(next_op_id);

  if (!r.AtEnd()) {
    return Status::Corruption("checkpoint payload has trailing bytes");
  }
  clock_.Reset(clock_next);
  return Status::Ok();
}

}  // namespace bdbms
