#include "wal/wal_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace bdbms {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

class PosixAppendFile : public AppendFile {
 public:
  explicit PosixAppendFile(int fd) : fd_(fd) {}
  ~PosixAppendFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("append");
      }
      if (n == 0) {
        // A zero-byte write for a nonzero count must surface, not spin.
        return Status::IoError("append: write wrote 0 bytes");
      }
      done += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync");
    return Status::Ok();
  }

 private:
  int fd_;
};

class PosixPageFile : public PageFile {
 public:
  explicit PosixPageFile(int fd) : fd_(fd) {}
  ~PosixPageFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, uint8_t* out) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, out + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Errno("pread");
      }
      if (r == 0) return Status::IoError("pread: unexpected EOF");
      done += static_cast<size_t>(r);
    }
    return Status::Ok();
  }

  Status Write(uint64_t offset, const uint8_t* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pwrite(fd_, data + done, n - done,
                           static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Errno("pwrite");
      }
      if (r == 0) return Status::IoError("pwrite: wrote 0 bytes");
      done += static_cast<size_t>(r);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync");
    return Status::Ok();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Errno("ftruncate");
    }
    return Status::Ok();
  }

  Result<uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return Errno("fstat");
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
};

class PosixDirLock : public DirLock {
 public:
  explicit PosixDirLock(int fd) : fd_(fd) {}
  ~PosixDirLock() override {
    // flock drops with the descriptor; explicit for clarity.
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }

 private:
  int fd_;
};

}  // namespace

Result<std::unique_ptr<AppendFile>> WalEnv::OpenAppend(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open " + path);
  return std::unique_ptr<AppendFile>(new PosixAppendFile(fd));
}

Result<std::unique_ptr<PageFile>> WalEnv::OpenPageFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Errno("open " + path);
  return std::unique_ptr<PageFile>(new PosixPageFile(fd));
}

Result<std::vector<std::string>> WalEnv::ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir " + dir);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    struct dirent* e = ::readdir(d);
    if (e == nullptr) {
      if (errno != 0) {
        int err = errno;
        ::closedir(d);
        errno = err;
        return Errno("readdir " + dir);
      }
      break;
    }
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) != 0) continue;
    if (S_ISREG(st.st_mode)) names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::string> WalEnv::ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open " + path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read " + path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool WalEnv::FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status WalEnv::TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate " + path);
  }
  return Status::Ok();
}

Status WalEnv::RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("rename " + from + " -> " + to);
  }
  return Status::Ok();
}

Status WalEnv::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return Errno("unlink " + path);
  return Status::Ok();
}

Status WalEnv::CreateDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir " + dir);
  }
  return Status::Ok();
}

Status WalEnv::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir " + dir);
  Status s = Status::Ok();
  if (::fsync(fd) != 0) s = Errno("fsync dir " + dir);
  ::close(fd);
  return s;
}

Result<std::unique_ptr<DirLock>> WalEnv::LockDir(const std::string& dir) {
  const std::string path = dir + "/LOCK";
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Errno("open " + path);
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    int err = errno;
    ::close(fd);
    if (err == EWOULDBLOCK) {
      return Status::FailedPrecondition(
          dir + " is already open in another Database instance");
    }
    return Status::IoError("flock " + path + ": " + std::strerror(err));
  }
  return std::unique_ptr<DirLock>(new PosixDirLock(fd));
}

WalEnv* WalEnv::Default() {
  static WalEnv* env = new WalEnv();
  return env;
}

}  // namespace bdbms
