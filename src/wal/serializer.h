#ifndef BDBMS_WAL_SERIALIZER_H_
#define BDBMS_WAL_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/value.h"

namespace bdbms {

// Little-endian byte-stream writer used for WAL record payloads and the
// checkpoint snapshot. Fixed-width integers keep the format independent of
// host struct layout; strings are u32-length-prefixed.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AppendLe(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }
  void Val(const Value& v) { v.EncodeTo(out_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    char buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    out_->append(buf, sizeof(T));
  }

  std::string* out_;
};

// Matching reader. Every accessor is bounds-checked and returns Corruption
// on truncated input, so a damaged checkpoint or WAL payload is reported
// rather than read out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8() {
    BDBMS_RETURN_IF_ERROR(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> U32() { return ReadLe<uint32_t>(); }
  Result<uint64_t> U64() { return ReadLe<uint64_t>(); }
  Result<int64_t> I64() {
    BDBMS_ASSIGN_OR_RETURN(uint64_t v, ReadLe<uint64_t>());
    return static_cast<int64_t>(v);
  }
  Result<double> F64() {
    BDBMS_ASSIGN_OR_RETURN(uint64_t bits, ReadLe<uint64_t>());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<std::string> Str() {
    BDBMS_ASSIGN_OR_RETURN(uint32_t len, U32());
    BDBMS_RETURN_IF_ERROR(Need(len));
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }
  Result<Value> Val() { return Value::DecodeFrom(data_, &pos_); }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) const {
    if (data_.size() - pos_ < n) {
      return Status::Corruption("serialized payload truncated at offset " +
                                std::to_string(pos_));
    }
    return Status::Ok();
  }

  template <typename T>
  Result<T> ReadLe() {
    BDBMS_RETURN_IF_ERROR(Need(sizeof(T)));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace bdbms

#endif  // BDBMS_WAL_SERIALIZER_H_
