#ifndef BDBMS_WAL_CHECKPOINT_H_
#define BDBMS_WAL_CHECKPOINT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "wal/wal_env.h"

namespace bdbms {

// Durable-directory layout (Database::Open rooted at some dir):
//   dir/wal.log             CRC-framed statement log (wal.h)
//   dir/checkpoint.bdb      newest committed snapshot, page-formatted
//   dir/checkpoint.bdb.tmp  in-flight snapshot; ignored + removed on open
inline constexpr const char* kWalFileName = "wal.log";
inline constexpr const char* kCheckpointFileName = "checkpoint.bdb";
inline constexpr const char* kCheckpointTmpFileName = "checkpoint.bdb.tmp";

// Checkpoint file layout, written through the file-backed Pager:
//   page 0:   magic "BDBMSCP1", u32 format version, u64 payload length,
//             u32 CRC-32 of the payload
//   page 1..: payload bytes, kPageSize per page
// Commit protocol: write + fsync checkpoint.bdb.tmp, rename over
// checkpoint.bdb, fsync the directory. A crash before the rename leaves
// the previous checkpoint intact (the .tmp is garbage-collected on open);
// the rename itself is the atomic commit point.
Status WriteCheckpointFile(WalEnv* env, const std::string& dir,
                           std::string_view payload);

// Reads and validates dir/checkpoint.bdb. Corruption (bad magic, impossible
// length, CRC mismatch, torn file) is an error: a checkpoint that was
// acknowledged must not be silently dropped, unlike a torn WAL tail.
Result<std::string> ReadCheckpointFile(const std::string& dir);

}  // namespace bdbms

#endif  // BDBMS_WAL_CHECKPOINT_H_
