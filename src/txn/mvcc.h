#ifndef BDBMS_TXN_MVCC_H_
#define BDBMS_TXN_MVCC_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace bdbms {

class Table;
class AnnotationTable;

// A consistent point-in-time view of the database under snapshot
// isolation. `csn` is the newest commit sequence number whose effects the
// snapshot sees; `txn_id` identifies the owning transaction so it also
// sees its own uncommitted writes (read-your-own-writes). Captured at
// BEGIN for explicit transactions and per statement in autocommit.
struct MvccSnapshot {
  uint64_t csn = 0;
  uint64_t txn_id = 0;  // 0 = pure reader with no writes of its own
};

// Write-side identity and write set of one in-flight transaction (or of
// one autocommit statement, which is its own mini-transaction). Mutation
// paths in Table/AnnotationTable consult the ambient MvccState: when a
// writer is installed they create row versions tagged with `txn_id` and
// record what they touched here, so commit can stamp every created
// version with the commit CSN in one pass and abort can be driven by the
// undo log alone.
struct MvccWriter {
  uint64_t txn_id = 0;
  uint64_t snapshot_csn = 0;  // first-updater-wins conflict baseline

  // Distinct (table, row) / (annotation table, annotation id) touch
  // points needing a commit stamp. Duplicates are harmless: stamping is
  // idempotent (it only fills CSN fields that are still zero and owned
  // by this txn).
  std::vector<std::pair<Table*, uint64_t>> rows;
  std::vector<std::pair<AnnotationTable*, uint64_t>> annotations;

  void Clear() {
    rows.clear();
    annotations.clear();
  }
};

// The ambient MVCC context shared by the engine facade and every storage
// object. `writer` is non-null exactly while a mutating statement of a
// versioned (concurrent) transaction executes — installed and cleared
// under the engine's writer mutex, so storage mutators never observe a
// torn pointer.
struct MvccState {
  MvccWriter* writer = nullptr;
};

// The engine gate: a reader/writer lock like the PR-6 std::shared_mutex
// engine lock, but explicitly NOT thread-affine — an escalated
// transaction may acquire the exclusive side from one worker thread of
// the session pool and release it from another, which std::shared_mutex
// forbids. Writer-preferring so an escalation cannot starve behind a
// stream of readers.
class EngineGate {
 public:
  void LockShared() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !exclusive_ && waiting_exclusive_ == 0; });
    ++shared_;
  }

  void UnlockShared() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--shared_ == 0) cv_.notify_all();
  }

  void LockExclusive() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_exclusive_;
    cv_.wait(lock, [&] { return !exclusive_ && shared_ == 0; });
    --waiting_exclusive_;
    exclusive_ = true;
  }

  void UnlockExclusive() {
    std::lock_guard<std::mutex> lock(mu_);
    exclusive_ = false;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int shared_ = 0;
  int waiting_exclusive_ = 0;
  bool exclusive_ = false;
};

// Scoped shared hold on the gate (one read-only or concurrent-DML
// statement).
class SharedGateLock {
 public:
  explicit SharedGateLock(EngineGate* gate) : gate_(gate) {
    gate_->LockShared();
  }
  ~SharedGateLock() {
    if (gate_) gate_->UnlockShared();
  }
  SharedGateLock(const SharedGateLock&) = delete;
  SharedGateLock& operator=(const SharedGateLock&) = delete;

 private:
  EngineGate* gate_;
};

// Scoped exclusive hold (one exclusive autocommit statement or
// CHECKPOINT). Escalated transactions manage the exclusive side manually
// because the hold spans statements and threads.
class ExclusiveGateLock {
 public:
  explicit ExclusiveGateLock(EngineGate* gate) : gate_(gate) {
    gate_->LockExclusive();
  }
  ~ExclusiveGateLock() {
    if (gate_) gate_->UnlockExclusive();
  }
  ExclusiveGateLock(const ExclusiveGateLock&) = delete;
  ExclusiveGateLock& operator=(const ExclusiveGateLock&) = delete;

  // Hands the hold to a manual owner (an escalating transaction).
  void Release() { gate_ = nullptr; }

 private:
  EngineGate* gate_;
};

}  // namespace bdbms

#endif  // BDBMS_TXN_MVCC_H_
