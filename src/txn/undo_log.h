#ifndef BDBMS_TXN_UNDO_LOG_H_
#define BDBMS_TXN_UNDO_LOG_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace bdbms {

// Statement-local undo log of logical compensation records.
//
// While recording, every mutation path (Table, Catalog, AnnotationTable,
// access control, approvals, dependencies) pushes a closure that undoes
// exactly one primitive effect. Rollback applies the closures newest-first;
// because compensations run through the same public APIs that performed
// the forward mutation, secondary and SP-GiST indexes are rebuilt for
// free rather than patched by hand.
//
// Mark()/RollbackTo() give statement-level savepoints inside a
// transaction: a failed statement unwinds to its own mark and the
// transaction stays alive. Recording is suppressed while a rollback is in
// flight so compensations do not record compensations of themselves.
class UndoLog {
 public:
  using Action = std::function<void()>;
  using Mark = size_t;

  // Starts capturing compensation records. Idempotent.
  void Begin() { recording_ = true; }

  // Stops capturing and discards everything recorded. Called on commit
  // (effects are now journaled) and after a completed rollback.
  void Stop() {
    recording_ = false;
    actions_.clear();
  }

  // True when mutation paths should push compensation records.
  bool recording() const { return recording_ && !rolling_back_; }

  // Savepoint for the statement about to run.
  Mark MarkPoint() const { return actions_.size(); }

  // Pushes one compensation record. `what` names the forward effect for
  // diagnostics. No-op unless recording.
  void Record(std::string what, Action action) {
    if (!recording()) return;
    actions_.push_back({std::move(what), std::move(action)});
  }

  // Applies and pops every record newer than `mark`, newest first.
  void RollbackTo(Mark mark) {
    rolling_back_ = true;
    while (actions_.size() > mark) {
      actions_.back().undo();
      actions_.pop_back();
    }
    rolling_back_ = false;
  }

  // Applies every record and stops recording.
  void RollbackAll() {
    RollbackTo(0);
    Stop();
  }

  size_t size() const { return actions_.size(); }

 private:
  struct Entry {
    std::string what;
    Action undo;
  };

  std::vector<Entry> actions_;
  bool recording_ = false;
  bool rolling_back_ = false;
};

}  // namespace bdbms

#endif  // BDBMS_TXN_UNDO_LOG_H_
