#ifndef BDBMS_CORE_DATABASE_H_
#define BDBMS_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "annot/annotation_manager.h"
#include "auth/access_control.h"
#include "auth/approval.h"
#include "catalog/catalog.h"
#include "common/clock.h"
#include "dep/dependency_manager.h"
#include "dep/procedure.h"
#include "exec/executor.h"
#include "exec/query_result.h"
#include "prov/provenance.h"
#include "table/table.h"

namespace bdbms {

// The bdbms engine facade — the public API of the library.
//
//   bdbms::Database db;
//   db.Execute("CREATE TABLE Gene (GID TEXT, GName TEXT, GSequence SEQUENCE)");
//   db.Execute("CREATE ANNOTATION TABLE GAnnotation ON Gene");
//   db.Execute("ADD ANNOTATION TO Gene.GAnnotation "
//              "VALUE '<Annotation>curated</Annotation>' "
//              "ON (SELECT G.GSequence FROM Gene G)");
//   auto r = db.Execute("SELECT GID FROM Gene ANNOTATION(GAnnotation)");
//
// One Database instance wires together the annotation manager, provenance
// manager, dependency manager and authorization manager of the paper's
// architecture (Figure: Section 2) over the paged storage engine.
// Single-threaded, like the CIDR'07 prototype.
class Database {
 public:
  Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Parses and executes one A-SQL statement as `user`. "admin" is the
  // built-in superuser.
  Result<QueryResult> Execute(std::string_view sql,
                              const std::string& user = "admin");

  // --- programmatic access to the managers (examples, tests, benches) ----
  Catalog& catalog() { return catalog_; }
  AnnotationManager& annotations() { return annotations_; }
  ProvenanceManager& provenance() { return provenance_; }
  ProcedureRegistry& procedures() { return procedures_; }
  DependencyManager& dependencies() { return dependencies_; }
  AccessControl& access() { return access_; }
  ApprovalManager& approvals() { return approvals_; }
  LogicalClock& clock() { return clock_; }

  // Storage object of a user table.
  Result<Table*> GetTable(const std::string& name);

  // A resolver bound to this database (for manager APIs that need one).
  DependencyManager::TableResolver Resolver();

  // Rows removed via ADD ANNOTATION ... ON (DELETE ...), with the
  // annotation explaining why (paper §3.2).
  const std::vector<DeletionLogEntry>& DeletionLog(const std::string& table);

  // Runs the dependency engine's reaction to an externally performed cell
  // update (used by code driving Table objects directly).
  Result<DependencyManager::PropagationReport> NotifyCellUpdated(
      const std::string& table, RowId row, size_t col);

 private:
  ExecContext MakeContext();

  LogicalClock clock_;
  Catalog catalog_;
  AnnotationManager annotations_;
  ProvenanceManager provenance_;
  ProcedureRegistry procedures_;
  DependencyManager dependencies_;
  AccessControl access_;
  ApprovalManager approvals_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::vector<DeletionLogEntry>> deletion_log_;
};

}  // namespace bdbms

#endif  // BDBMS_CORE_DATABASE_H_
