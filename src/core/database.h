#ifndef BDBMS_CORE_DATABASE_H_
#define BDBMS_CORE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "annot/annotation_manager.h"
#include "auth/access_control.h"
#include "auth/approval.h"
#include "catalog/catalog.h"
#include "common/clock.h"
#include "dep/dependency_manager.h"
#include "dep/procedure.h"
#include "exec/executor.h"
#include "exec/query_result.h"
#include "prov/provenance.h"
#include "table/table.h"
#include "txn/mvcc.h"
#include "txn/undo_log.h"
#include "wal/wal.h"
#include "wal/wal_env.h"

namespace bdbms {

class Database;

// Tuning and wiring for a durable database (Database::Open).
struct DurabilityOptions {
  // fsync the WAL after this many committed statements. 1 (the default)
  // is per-statement durability: Execute() returns only once the
  // statement is on stable storage. Larger values batch fsyncs (group
  // commit): up to interval-1 recently committed statements may be lost
  // on a crash, but throughput rises by roughly the same factor
  // (bench/bench_wal.cc).
  uint64_t group_commit_interval = 1;

  // Take an automatic CHECKPOINT after this many logged statements,
  // bounding both log length and recovery replay time. 0 disables
  // auto-checkpointing (CHECKPOINT can still be issued manually).
  uint64_t checkpoint_interval = 1024;

  // Filesystem the WAL and checkpoint-commit steps go through. Null means
  // the default POSIX environment; the crash-injection tests inject a
  // fault-wrapping environment here.
  WalEnv* env = nullptr;

  // Per-table buffer-pool budget, in 8 KiB page frames, for the durable
  // paged row heaps (dir/heap/*.heap). Pages beyond the budget evict LRU,
  // writing dirty pages back first, so tables larger than RAM work. 0 =
  // unbounded (every touched page stays resident).
  size_t buffer_pool_pages = 64;

  // Sequential-scan readahead: while a SeqScan walks a paged table, the
  // next up-to-this-many heap pages are prefetched into the buffer pool.
  // 0 disables readahead.
  size_t readahead_pages = 4;

  // Run on the freshly constructed engine before any recovery. Procedures
  // (ProcedureRegistry) and provenance system agents are registered
  // programmatically, not via SQL, so a database whose log contains
  // CREATE DEPENDENCY statements must re-register the procedures here or
  // recovery fails with the underlying validation error.
  std::function<Status(Database&)> bootstrap;
};

// Counters describing the durability subsystem, for tests and benches.
struct DurabilityStats {
  uint64_t last_lsn = 0;             // newest committed statement's lsn
  uint64_t replayed_on_open = 0;     // WAL records replayed by Open()
  uint64_t checkpoints_taken = 0;    // by this instance (manual + auto)
  uint64_t checkpoint_failures = 0;  // failed auto-checkpoints (retried)
  uint64_t wal_bytes_appended = 0;   // by this instance
  uint64_t wal_syncs = 0;            // fsyncs issued on the log
  uint64_t statements_since_checkpoint = 0;
};

// The bdbms engine facade — the public API of the library.
//
//   bdbms::Database db;
//   db.Execute("CREATE TABLE Gene (GID TEXT, GName TEXT, GSequence SEQUENCE)");
//   db.Execute("CREATE ANNOTATION TABLE GAnnotation ON Gene");
//   db.Execute("ADD ANNOTATION TO Gene.GAnnotation "
//              "VALUE '<Annotation>curated</Annotation>' "
//              "ON (SELECT G.GSequence FROM Gene G)");
//   auto r = db.Execute("SELECT GID FROM Gene ANNOTATION(GAnnotation)");
//
// One Database instance wires together the annotation manager, provenance
// manager, dependency manager and authorization manager of the paper's
// architecture (Figure: Section 2) over the paged storage engine.
//
// A default-constructed Database is memory-only and evaporates with the
// process. Database::Open(dir) attaches a durable store: every committed
// mutating statement is journaled to a CRC-framed write-ahead log before
// Execute() returns, checkpoints bound replay, and Open() recovers the
// full engine state — tables, annotations, dependencies, approvals,
// grants — from the newest valid checkpoint plus the log tail
// (docs/durability.md).
//
// Concurrency (docs/transactions.md): Execute() is safe to call from any
// number of threads. Statements run under snapshot-isolation MVCC:
//
//  - Read-only statements take a shared hold on the engine gate, capture
//    a snapshot (the newest commit sequence number), and never block on
//    — or are blocked by — concurrent DML. They see exactly the commits
//    with CSN <= their snapshot.
//  - INSERT/UPDATE/DELETE (and SELECT-form ADD ANNOTATION) on tables not
//    involved in dependency rules or content approval also run under the
//    shared gate, versioning superseded rows instead of overwriting
//    them. Write-write conflicts resolve first-updater-wins: the loser
//    fails with a serialization-failure status and, inside an explicit
//    transaction, dooms it (only ROLLBACK/COMMIT-as-rollback is accepted
//    afterwards).
//  - Statements that drive cross-cutting machinery (DDL, dependency
//    propagation into other tables, approvals, grants, ANALYZE, ...)
//    escalate to the exclusive side of the gate, drain concurrent
//    transactions, and run the PR-6 serial path unchanged.
//
// Commit order is journaled: versioned WAL records carry their snapshot
// and commit CSNs, so recovery replays the exact visibility decisions of
// the original run. Superseded versions are garbage-collected as soon as
// no live snapshot can need them.
//
// The programmatic manager accessors below bypass the gate and remain
// single-threaded, like the CIDR'07 prototype.
class Database {
 public:
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Opens (creating if needed) a durable database rooted at directory
  // `dir` (layout: dir/wal.log + dir/checkpoint.bdb). Recovers state from
  // the newest valid checkpoint and the committed prefix of the log; a
  // torn or corrupted log tail is discarded (that is the expected crash
  // shape), while a corrupted checkpoint fails the open with Corruption —
  // silently dropping a checkpoint would lose acknowledged commits.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                DurabilityOptions options = {});

  // Parses and executes one A-SQL statement as `user`. "admin" is the
  // built-in superuser. On a durable database, a successful mutating
  // statement is appended to the WAL and fsynced per
  // DurabilityOptions::group_commit_interval before this returns; an
  // error from the journaling path is the caller's signal that the
  // statement may not survive a crash.
  //
  // Every statement is atomic: a mid-statement failure rolls back all of
  // its partial effects via the undo log before the error returns.
  //
  // `session` identifies the issuing session for transaction ownership
  // (BEGIN/COMMIT/ROLLBACK); callers without a Session object share one
  // implicit session. Any number of sessions may hold open transactions
  // concurrently; each sees its own snapshot. A statement that requires
  // exclusive escalation waits for other open transactions to finish
  // first (and fails with a serialization-failure status if two open
  // transactions try to escalate at once).
  Result<QueryResult> Execute(std::string_view sql,
                              const std::string& user = "admin",
                              const void* session = nullptr);

  // True when `session` (nullptr = the implicit session) has an open
  // transaction.
  bool InTransaction(const void* session = nullptr) const;

  // Snapshots the entire engine state to checkpoint.bdb (write-temp +
  // fsync + atomic rename + directory fsync) and truncates the WAL. Also
  // available as the A-SQL statement CHECKPOINT. Waits for open
  // transactions to drain (uncommitted effects never reach the
  // checkpoint file).
  Status Checkpoint();

  // Flushes pending group-commit WAL records, releases the directory
  // lock, and latches the instance: later mutating statements fail with
  // FailedPrecondition instead of silently running memory-only. The
  // error-reporting counterpart of the destructor, which can only sync
  // best-effort; a sync failure is reported by the first Close call
  // only (the instance is latched either way, and reopening the
  // directory is how the caller recovers).
  Status Close();

  bool is_durable() const { return dur_ != nullptr; }
  DurabilityStats durability_stats() const;

  // Retained superseded row versions across all tables — the metric the
  // GC tests watch ("vacuum must not resurrect or leak versions").
  uint64_t version_count() const;

  // --- programmatic access to the managers (examples, tests, benches) ----
  Catalog& catalog() { return catalog_; }
  AnnotationManager& annotations() { return annotations_; }
  ProvenanceManager& provenance() { return provenance_; }
  ProcedureRegistry& procedures() { return procedures_; }
  DependencyManager& dependencies() { return dependencies_; }
  AccessControl& access() { return access_; }
  ApprovalManager& approvals() { return approvals_; }
  LogicalClock& clock() { return clock_; }

  // Storage object of a user table.
  Result<Table*> GetTable(const std::string& name);

  // A resolver bound to this database (for manager APIs that need one).
  DependencyManager::TableResolver Resolver();

  // Rows removed via ADD ANNOTATION ... ON (DELETE ...), with the
  // annotation explaining why (paper §3.2).
  const std::vector<DeletionLogEntry>& DeletionLog(const std::string& table);

  // Runs the dependency engine's reaction to an externally performed cell
  // update (used by code driving Table objects directly).
  Result<DependencyManager::PropagationReport> NotifyCellUpdated(
      const std::string& table, RowId row, size_t col);

 private:
  // One buffered statement of an open transaction (journaled only at
  // COMMIT — the WAL never sees uncommitted work), doubling as the
  // record-assembly buffer for autocommit statements.
  struct PendingStatement {
    std::string user;
    std::string sql;
    uint64_t clock_before = 0;
    uint8_t versioned = 0;
    uint64_t snapshot = 0;
    std::vector<std::pair<std::string, uint64_t>> row_bases;
    std::vector<std::pair<std::string, uint64_t>> ann_bases;
  };

  // State of one open transaction. Lives in txns_ keyed by session token.
  struct TxnState {
    uint64_t txn_id = 0;
    MvccSnapshot snapshot;  // captured at BEGIN
    MvccWriter writer;      // versioned write set, stamped at COMMIT
    std::unique_ptr<UndoLog> undo;
    std::vector<PendingStatement> pending;
    uint64_t clock_at_begin = 0;
    uint64_t clock_at_escalation = 0;
    uint64_t epoch_at_begin = 0;  // mutation_epoch_ at BEGIN
    uint64_t own_mutations = 0;   // committed statements of this txn
    bool escalated = false;       // holds the gate exclusively until end
    bool doomed = false;          // serialization failure; rolled back
  };

  // How a mutating autocommit/in-transaction statement executes.
  enum class StmtClass {
    kConcurrentDml,  // versioned, under the shared gate
    kExclusive,      // legacy serial path, drains transactions
  };

  ExecContext MakeContext();

  // Classification of a mutating statement; called under the shared gate
  // (rule/approval changes are exclusive, so the answer is stable for
  // the duration of the hold).
  StmtClass Classify(const Statement& stmt) const;
  bool TableInvolved(const std::string& table) const;

  Result<QueryResult> BeginTxn(const void* token);
  Result<QueryResult> CommitTxn(const void* token);
  Result<QueryResult> RollbackTxn(const void* token);
  // Unregisters the transaction (waking escalation/checkpoint waiters)
  // and, for an escalated one, releases the exclusive gate hold.
  void EndTxn(const void* token);
  TxnState* FindTxn(const void* token) const;

  Result<QueryResult> ExecuteRead(const Statement& stmt,
                                  const std::string& user);
  Result<QueryResult> ExecuteConcurrent(const Statement& stmt,
                                        std::string_view sql,
                                        const std::string& user);
  Result<QueryResult> ExecuteExclusive(const Statement& stmt,
                                       std::string_view sql,
                                       const std::string& user);
  Result<QueryResult> ExecuteInTxn(TxnState* t, const Statement& stmt,
                                   std::string_view sql,
                                   const std::string& user, bool mutating);
  Result<QueryResult> ExecuteTxnDml(TxnState* t, const Statement& stmt,
                                    std::string_view sql,
                                    const std::string& user);
  Result<QueryResult> ExecuteTxnExclusive(TxnState* t, const Statement& stmt,
                                          std::string_view sql,
                                          const std::string& user);

  // Rolls the transaction back in place after a serialization failure
  // and marks it doomed (only ROLLBACK / COMMIT-as-rollback is accepted
  // afterwards, and its snapshot stops pinning GC). Caller holds
  // writer_mu_.
  void DoomLocked(TxnState* t);

  // Acquires the exclusive side of the gate and waits until no
  // transaction other than `self` is open (legacy execution and full
  // vacuum are only sound with no foreign snapshot alive). For an
  // escalating transaction (`self` non-null) fails with a
  // serialization-failure status instead of deadlocking when another
  // transaction is already draining.
  Status LockExclusiveNoTxns(const TxnState* self);

  // Points every manager and table at `undo` (a transaction's private
  // log, or the shared autocommit log). Caller holds writer_mu_.
  void BindUndo(UndoLog* undo);

  // Stamps every write-set entry that still refers to a live storage
  // object with `csn`, then clears the set. Caller holds writer_mu_.
  void StampWriteSet(MvccWriter& writer, uint64_t csn);

  // Fills `ps` with every table's next_row_id and every annotation
  // table's next_id (aborted transactions burn ids without leaving WAL
  // records, so replay restores the counters explicitly).
  void CaptureBases(PendingStatement* ps) const;
  void ApplyReplayBases(const WalRecord& rec);

  // min snapshot CSN across open transactions and in-flight readers;
  // caller holds txn_mu_.
  uint64_t ComputeOldestCsnLocked() const;
  void VacuumAllLocked(uint64_t oldest_csn);  // caller holds writer_mu_
  void TryVacuumLocked();                     // caller holds writer_mu_
  void TryVacuumAfterRead();                  // try-locks writer_mu_

  // Restores the clock after a whole-transaction rollback when no
  // foreign mutation interleaved (fingerprint parity with PR-6);
  // caller holds writer_mu_.
  void ApplyRollbackClockPolicy(const TxnState& t);

  // Journals one committed autocommit statement and drives the fsync /
  // deferred-checkpoint cadence. `csn` is the statement's commit CSN
  // (0 when it wrote no versions).
  Status LogCommitted(const PendingStatement& ps, uint64_t csn);

  // Journals the open transaction as one BEGIN-framed group (begin
  // marker, buffered statements, commit marker carrying `csn`) with a
  // single fsync.
  Status LogTxnCommitted(TxnState* t, uint64_t csn);

  // Runs a deferred auto-checkpoint if one is due and no transaction is
  // open. Called after the gate hold of the triggering statement ends.
  void MaybeDeferredCheckpoint();

  // Checkpoint body; the caller holds the gate exclusively + writer_mu_.
  Status CheckpointLocked();

  // Latches the durable store unusable after a write-path failure left
  // the log in an untrustworthy state; every later commit fails with
  // FailedPrecondition until the database is reopened (recovery trims
  // the torn tail).
  void TearDownWal();

  // Re-executes one WAL record with its recorded user, clock value, id
  // bases and (for versioned records) snapshot. `group_writer` is the
  // shared write set of the enclosing transaction frame, null for
  // autocommit records.
  Status ReplayRecord(const WalRecord& rec, MvccWriter* group_writer);

  // Advances the CSN counters past a journaled commit CSN (replay).
  void AdvanceCsn(uint64_t csn);

  // Checkpoint payload (de)serialization over the full engine state;
  // defined in src/wal/checkpoint.cc next to the file format. `gen` is the
  // checkpoint generation the paged heaps staged their dirty pages under.
  Result<std::string> SerializeSnapshot(uint64_t last_lsn,
                                        uint64_t gen) const;
  Status LoadSnapshot(std::string_view payload, uint64_t* last_lsn);

  // Durable-mode state; null for memory-only databases.
  struct Durable {
    std::string dir;
    DurabilityOptions options;
    WalEnv* env = nullptr;
    std::unique_ptr<DirLock> lock;  // exclusive dir/LOCK, lifetime-held
    std::unique_ptr<WalWriter> wal;
    uint64_t last_lsn = 0;
    uint64_t replayed_on_open = 0;
    uint64_t checkpoints_taken = 0;
    uint64_t checkpoint_failures = 0;
    uint64_t statements_since_checkpoint = 0;
    uint64_t wal_bytes_total = 0;  // across WalWriter reopens
    uint64_t wal_syncs_total = 0;

    std::string WalPath() const;
  };

  // Paged-heap wiring of a durable database; null for memory-only ones.
  // Separate from `dur_` because recovery creates paged tables while WAL
  // logging is still off (dur_ is installed only after replay).
  struct PagedStorage {
    WalEnv* env = nullptr;
    std::string heap_dir;  // <dir>/heap
    size_t pool_pages = 64;
    size_t readahead_pages = 4;
    // Monotonic counter naming heap files (<table>.<counter>.heap);
    // persisted in the manifest so reopened incarnations never collide
    // with files parked by undo closures or awaiting GC.
    uint64_t next_heap_file = 0;
    // Generation of the last committed checkpoint; each attempt stages
    // dirty pages under gen+1 and records it on success.
    uint64_t checkpoint_gen = 0;
  };

  // Creates (replacing any stale files) the paged table `name`; used by
  // both the executor's create_table hook and snapshot load.
  Result<std::unique_ptr<Table>> CreatePagedTable(const TableSchema& schema);

  LogicalClock clock_;
  Catalog catalog_;
  AnnotationManager annotations_;
  ProvenanceManager provenance_;
  ProcedureRegistry procedures_;
  DependencyManager dependencies_;
  AccessControl access_;
  ApprovalManager approvals_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::vector<DeletionLogEntry>> deletion_log_;
  std::unique_ptr<Durable> dur_;
  std::unique_ptr<PagedStorage> paged_;

  // Compensation log for autocommit statements. Open transactions carry
  // their own UndoLog (TxnState::undo) so interleaved transactions do
  // not share one LIFO stack; BindUndo() switches the engine between
  // them around each mutating statement.
  UndoLog undo_;

  // Ambient MVCC context shared with every storage object. A writer is
  // installed exactly while a versioned mutating statement executes
  // (under writer_mu_).
  MvccState mvcc_state_;

  // The engine gate: shared for reads and concurrent DML, exclusive for
  // legacy statements / escalated transactions / checkpoints. Not
  // thread-affine (an escalated transaction may release from a different
  // pool thread than it acquired on).
  EngineGate gate_;

  // Serializes every mutating execution, commit, rollback and vacuum.
  // Lock order: gate_ -> writer_mu_ -> txn_mu_ -> storage latches.
  mutable std::mutex writer_mu_;

  // Guards the transaction registry, reader-snapshot set and escalation
  // counter; txn_cv_ signals registry shrinkage to draining waiters.
  mutable std::mutex txn_mu_;
  std::condition_variable txn_cv_;
  std::map<const void*, std::unique_ptr<TxnState>> txns_;
  std::multiset<uint64_t> read_snapshots_;  // in-flight read statements
  int escalations_waiting_ = 0;

  std::atomic<uint64_t> next_txn_id_{1};
  // Commit sequence numbers live on their own counter, never the logical
  // clock: commits must not perturb the clock values statements observe
  // (replay and the COMMIT-equals-autocommit equivalence depend on it).
  std::atomic<uint64_t> next_csn_{1};
  std::atomic<uint64_t> last_completed_csn_{0};

  // Bumped (under writer_mu_) by every committed mutating statement;
  // lets rollback detect whether foreign mutations interleaved.
  uint64_t mutation_epoch_ = 0;

  // Set when the WAL append path decides an auto-checkpoint is due;
  // consumed by MaybeDeferredCheckpoint() once the gate is free.
  std::atomic<bool> checkpoint_due_{false};

  // The undo log mutation paths currently record into (MakeContext reads
  // it when wiring fresh storage objects). Written under writer_mu_.
  std::atomic<UndoLog*> active_undo_{&undo_};
};

}  // namespace bdbms

#endif  // BDBMS_CORE_DATABASE_H_
