#ifndef BDBMS_CORE_DATABASE_H_
#define BDBMS_CORE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "annot/annotation_manager.h"
#include "auth/access_control.h"
#include "auth/approval.h"
#include "catalog/catalog.h"
#include "common/clock.h"
#include "dep/dependency_manager.h"
#include "dep/procedure.h"
#include "exec/executor.h"
#include "exec/query_result.h"
#include "prov/provenance.h"
#include "table/table.h"
#include "wal/wal.h"
#include "wal/wal_env.h"

namespace bdbms {

class Database;

// Tuning and wiring for a durable database (Database::Open).
struct DurabilityOptions {
  // fsync the WAL after this many committed statements. 1 (the default)
  // is per-statement durability: Execute() returns only once the
  // statement is on stable storage. Larger values batch fsyncs (group
  // commit): up to interval-1 recently committed statements may be lost
  // on a crash, but throughput rises by roughly the same factor
  // (bench/bench_wal.cc).
  uint64_t group_commit_interval = 1;

  // Take an automatic CHECKPOINT after this many logged statements,
  // bounding both log length and recovery replay time. 0 disables
  // auto-checkpointing (CHECKPOINT can still be issued manually).
  uint64_t checkpoint_interval = 1024;

  // Filesystem the WAL and checkpoint-commit steps go through. Null means
  // the default POSIX environment; the crash-injection tests inject a
  // fault-wrapping environment here.
  WalEnv* env = nullptr;

  // Run on the freshly constructed engine before any recovery. Procedures
  // (ProcedureRegistry) and provenance system agents are registered
  // programmatically, not via SQL, so a database whose log contains
  // CREATE DEPENDENCY statements must re-register the procedures here or
  // recovery fails with the underlying validation error.
  std::function<Status(Database&)> bootstrap;
};

// Counters describing the durability subsystem, for tests and benches.
struct DurabilityStats {
  uint64_t last_lsn = 0;             // newest committed statement's lsn
  uint64_t replayed_on_open = 0;     // WAL records replayed by Open()
  uint64_t checkpoints_taken = 0;    // by this instance (manual + auto)
  uint64_t checkpoint_failures = 0;  // failed auto-checkpoints (retried)
  uint64_t wal_bytes_appended = 0;   // by this instance
  uint64_t wal_syncs = 0;            // fsyncs issued on the log
  uint64_t statements_since_checkpoint = 0;
};

// The bdbms engine facade — the public API of the library.
//
//   bdbms::Database db;
//   db.Execute("CREATE TABLE Gene (GID TEXT, GName TEXT, GSequence SEQUENCE)");
//   db.Execute("CREATE ANNOTATION TABLE GAnnotation ON Gene");
//   db.Execute("ADD ANNOTATION TO Gene.GAnnotation "
//              "VALUE '<Annotation>curated</Annotation>' "
//              "ON (SELECT G.GSequence FROM Gene G)");
//   auto r = db.Execute("SELECT GID FROM Gene ANNOTATION(GAnnotation)");
//
// One Database instance wires together the annotation manager, provenance
// manager, dependency manager and authorization manager of the paper's
// architecture (Figure: Section 2) over the paged storage engine.
// Single-threaded, like the CIDR'07 prototype.
//
// A default-constructed Database is memory-only and evaporates with the
// process. Database::Open(dir) attaches a durable store: every committed
// mutating statement is journaled to a CRC-framed write-ahead log before
// Execute() returns, checkpoints bound replay, and Open() recovers the
// full engine state — tables, annotations, dependencies, approvals,
// grants — from the newest valid checkpoint plus the log tail
// (docs/durability.md).
class Database {
 public:
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Opens (creating if needed) a durable database rooted at directory
  // `dir` (layout: dir/wal.log + dir/checkpoint.bdb). Recovers state from
  // the newest valid checkpoint and the committed prefix of the log; a
  // torn or corrupted log tail is discarded (that is the expected crash
  // shape), while a corrupted checkpoint fails the open with Corruption —
  // silently dropping a checkpoint would lose acknowledged commits.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                DurabilityOptions options = {});

  // Parses and executes one A-SQL statement as `user`. "admin" is the
  // built-in superuser. On a durable database, a successful mutating
  // statement is appended to the WAL and fsynced per
  // DurabilityOptions::group_commit_interval before this returns; an
  // error from the journaling path is the caller's signal that the
  // statement may not survive a crash.
  Result<QueryResult> Execute(std::string_view sql,
                              const std::string& user = "admin");

  // Snapshots the entire engine state to checkpoint.bdb (write-temp +
  // fsync + atomic rename + directory fsync) and truncates the WAL. Also
  // available as the A-SQL statement CHECKPOINT.
  Status Checkpoint();

  // Flushes pending group-commit WAL records, releases the directory
  // lock, and latches the instance: later mutating statements fail with
  // FailedPrecondition instead of silently running memory-only. The
  // error-reporting counterpart of the destructor, which can only sync
  // best-effort; a sync failure is reported by the first Close call
  // only (the instance is latched either way, and reopening the
  // directory is how the caller recovers).
  Status Close();

  bool is_durable() const { return dur_ != nullptr; }
  DurabilityStats durability_stats() const;

  // --- programmatic access to the managers (examples, tests, benches) ----
  Catalog& catalog() { return catalog_; }
  AnnotationManager& annotations() { return annotations_; }
  ProvenanceManager& provenance() { return provenance_; }
  ProcedureRegistry& procedures() { return procedures_; }
  DependencyManager& dependencies() { return dependencies_; }
  AccessControl& access() { return access_; }
  ApprovalManager& approvals() { return approvals_; }
  LogicalClock& clock() { return clock_; }

  // Storage object of a user table.
  Result<Table*> GetTable(const std::string& name);

  // A resolver bound to this database (for manager APIs that need one).
  DependencyManager::TableResolver Resolver();

  // Rows removed via ADD ANNOTATION ... ON (DELETE ...), with the
  // annotation explaining why (paper §3.2).
  const std::vector<DeletionLogEntry>& DeletionLog(const std::string& table);

  // Runs the dependency engine's reaction to an externally performed cell
  // update (used by code driving Table objects directly).
  Result<DependencyManager::PropagationReport> NotifyCellUpdated(
      const std::string& table, RowId row, size_t col);

 private:
  ExecContext MakeContext();

  // Journals one committed statement and drives the fsync / auto-
  // checkpoint cadence.
  Status LogCommitted(std::string_view sql, const std::string& user,
                      uint64_t clock_before);

  // Latches the durable store unusable after a write-path failure left
  // the log in an untrustworthy state; every later commit fails with
  // FailedPrecondition until the database is reopened (recovery trims
  // the torn tail).
  void TearDownWal();

  // Re-executes one WAL record with its recorded user and clock value.
  Status ReplayRecord(const WalRecord& rec);

  // Checkpoint payload (de)serialization over the full engine state;
  // defined in src/wal/checkpoint.cc next to the file format.
  Result<std::string> SerializeSnapshot(uint64_t last_lsn) const;
  Status LoadSnapshot(std::string_view payload, uint64_t* last_lsn);

  // Durable-mode state; null for memory-only databases.
  struct Durable {
    std::string dir;
    DurabilityOptions options;
    WalEnv* env = nullptr;
    std::unique_ptr<DirLock> lock;  // exclusive dir/LOCK, lifetime-held
    std::unique_ptr<WalWriter> wal;
    uint64_t last_lsn = 0;
    uint64_t replayed_on_open = 0;
    uint64_t checkpoints_taken = 0;
    uint64_t checkpoint_failures = 0;
    uint64_t statements_since_checkpoint = 0;
    uint64_t wal_bytes_total = 0;  // across WalWriter reopens
    uint64_t wal_syncs_total = 0;

    std::string WalPath() const;
  };

  LogicalClock clock_;
  Catalog catalog_;
  AnnotationManager annotations_;
  ProvenanceManager provenance_;
  ProcedureRegistry procedures_;
  DependencyManager dependencies_;
  AccessControl access_;
  ApprovalManager approvals_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::vector<DeletionLogEntry>> deletion_log_;
  std::unique_ptr<Durable> dur_;
};

}  // namespace bdbms

#endif  // BDBMS_CORE_DATABASE_H_
