#ifndef BDBMS_CORE_DATABASE_H_
#define BDBMS_CORE_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "annot/annotation_manager.h"
#include "auth/access_control.h"
#include "auth/approval.h"
#include "catalog/catalog.h"
#include "common/clock.h"
#include "dep/dependency_manager.h"
#include "dep/procedure.h"
#include "exec/executor.h"
#include "exec/query_result.h"
#include "prov/provenance.h"
#include "table/table.h"
#include "txn/undo_log.h"
#include "wal/wal.h"
#include "wal/wal_env.h"

namespace bdbms {

class Database;

// Tuning and wiring for a durable database (Database::Open).
struct DurabilityOptions {
  // fsync the WAL after this many committed statements. 1 (the default)
  // is per-statement durability: Execute() returns only once the
  // statement is on stable storage. Larger values batch fsyncs (group
  // commit): up to interval-1 recently committed statements may be lost
  // on a crash, but throughput rises by roughly the same factor
  // (bench/bench_wal.cc).
  uint64_t group_commit_interval = 1;

  // Take an automatic CHECKPOINT after this many logged statements,
  // bounding both log length and recovery replay time. 0 disables
  // auto-checkpointing (CHECKPOINT can still be issued manually).
  uint64_t checkpoint_interval = 1024;

  // Filesystem the WAL and checkpoint-commit steps go through. Null means
  // the default POSIX environment; the crash-injection tests inject a
  // fault-wrapping environment here.
  WalEnv* env = nullptr;

  // Run on the freshly constructed engine before any recovery. Procedures
  // (ProcedureRegistry) and provenance system agents are registered
  // programmatically, not via SQL, so a database whose log contains
  // CREATE DEPENDENCY statements must re-register the procedures here or
  // recovery fails with the underlying validation error.
  std::function<Status(Database&)> bootstrap;
};

// Counters describing the durability subsystem, for tests and benches.
struct DurabilityStats {
  uint64_t last_lsn = 0;             // newest committed statement's lsn
  uint64_t replayed_on_open = 0;     // WAL records replayed by Open()
  uint64_t checkpoints_taken = 0;    // by this instance (manual + auto)
  uint64_t checkpoint_failures = 0;  // failed auto-checkpoints (retried)
  uint64_t wal_bytes_appended = 0;   // by this instance
  uint64_t wal_syncs = 0;            // fsyncs issued on the log
  uint64_t statements_since_checkpoint = 0;
};

// The bdbms engine facade — the public API of the library.
//
//   bdbms::Database db;
//   db.Execute("CREATE TABLE Gene (GID TEXT, GName TEXT, GSequence SEQUENCE)");
//   db.Execute("CREATE ANNOTATION TABLE GAnnotation ON Gene");
//   db.Execute("ADD ANNOTATION TO Gene.GAnnotation "
//              "VALUE '<Annotation>curated</Annotation>' "
//              "ON (SELECT G.GSequence FROM Gene G)");
//   auto r = db.Execute("SELECT GID FROM Gene ANNOTATION(GAnnotation)");
//
// One Database instance wires together the annotation manager, provenance
// manager, dependency manager and authorization manager of the paper's
// architecture (Figure: Section 2) over the paged storage engine.
// Single-threaded, like the CIDR'07 prototype.
//
// A default-constructed Database is memory-only and evaporates with the
// process. Database::Open(dir) attaches a durable store: every committed
// mutating statement is journaled to a CRC-framed write-ahead log before
// Execute() returns, checkpoints bound replay, and Open() recovers the
// full engine state — tables, annotations, dependencies, approvals,
// grants — from the newest valid checkpoint plus the log tail
// (docs/durability.md).
//
// Concurrency: Execute() is safe to call from multiple threads. A coarse
// reader/writer lock admits read-only statements concurrently and
// serializes mutating statements (docs/transactions.md). BEGIN acquires
// the writer side and holds it until COMMIT/ROLLBACK, so at most one
// transaction is open at a time and it observes no interleaved writes.
// The programmatic manager accessors below bypass the lock and remain
// single-threaded, like the CIDR'07 prototype.
class Database {
 public:
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Opens (creating if needed) a durable database rooted at directory
  // `dir` (layout: dir/wal.log + dir/checkpoint.bdb). Recovers state from
  // the newest valid checkpoint and the committed prefix of the log; a
  // torn or corrupted log tail is discarded (that is the expected crash
  // shape), while a corrupted checkpoint fails the open with Corruption —
  // silently dropping a checkpoint would lose acknowledged commits.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                DurabilityOptions options = {});

  // Parses and executes one A-SQL statement as `user`. "admin" is the
  // built-in superuser. On a durable database, a successful mutating
  // statement is appended to the WAL and fsynced per
  // DurabilityOptions::group_commit_interval before this returns; an
  // error from the journaling path is the caller's signal that the
  // statement may not survive a crash.
  //
  // Every statement is atomic: a mid-statement failure rolls back all of
  // its partial effects via the undo log before the error returns.
  //
  // `session` identifies the issuing session for transaction ownership
  // (BEGIN/COMMIT/ROLLBACK); callers without a Session object share one
  // implicit session. A session with an open transaction must issue all
  // of its statements from the thread that executed BEGIN (the writer
  // lock is thread-owned); other sessions block until it ends.
  Result<QueryResult> Execute(std::string_view sql,
                              const std::string& user = "admin",
                              const void* session = nullptr);

  // True when `session` (nullptr = the implicit session) holds the open
  // transaction.
  bool InTransaction(const void* session = nullptr) const {
    return txn_owner_.load(std::memory_order_acquire) ==
           (session ? session : static_cast<const void*>(this));
  }

  // Snapshots the entire engine state to checkpoint.bdb (write-temp +
  // fsync + atomic rename + directory fsync) and truncates the WAL. Also
  // available as the A-SQL statement CHECKPOINT.
  Status Checkpoint();

  // Flushes pending group-commit WAL records, releases the directory
  // lock, and latches the instance: later mutating statements fail with
  // FailedPrecondition instead of silently running memory-only. The
  // error-reporting counterpart of the destructor, which can only sync
  // best-effort; a sync failure is reported by the first Close call
  // only (the instance is latched either way, and reopening the
  // directory is how the caller recovers).
  Status Close();

  bool is_durable() const { return dur_ != nullptr; }
  DurabilityStats durability_stats() const;

  // --- programmatic access to the managers (examples, tests, benches) ----
  Catalog& catalog() { return catalog_; }
  AnnotationManager& annotations() { return annotations_; }
  ProvenanceManager& provenance() { return provenance_; }
  ProcedureRegistry& procedures() { return procedures_; }
  DependencyManager& dependencies() { return dependencies_; }
  AccessControl& access() { return access_; }
  ApprovalManager& approvals() { return approvals_; }
  LogicalClock& clock() { return clock_; }

  // Storage object of a user table.
  Result<Table*> GetTable(const std::string& name);

  // A resolver bound to this database (for manager APIs that need one).
  DependencyManager::TableResolver Resolver();

  // Rows removed via ADD ANNOTATION ... ON (DELETE ...), with the
  // annotation explaining why (paper §3.2).
  const std::vector<DeletionLogEntry>& DeletionLog(const std::string& table);

  // Runs the dependency engine's reaction to an externally performed cell
  // update (used by code driving Table objects directly).
  Result<DependencyManager::PropagationReport> NotifyCellUpdated(
      const std::string& table, RowId row, size_t col);

 private:
  // One buffered statement of an open transaction, journaled only at
  // COMMIT (the WAL never sees uncommitted work).
  struct PendingStatement {
    std::string user;
    std::string sql;
    uint64_t clock_before = 0;
  };

  // State of the (single) open transaction. Owning the struct implies
  // owning the exclusive engine lock.
  struct Txn {
    std::unique_lock<std::shared_mutex> lock;
    uint64_t clock_at_begin = 0;
    std::vector<PendingStatement> pending;
  };

  ExecContext MakeContext();

  Result<QueryResult> BeginTxn(const void* token);
  Result<QueryResult> CommitTxn(const void* token);
  Result<QueryResult> RollbackTxn(const void* token);
  // Clears ownership, then releases the exclusive lock (that order, so a
  // waiter that wins the lock never sees a stale owner).
  void EndTxn();

  // Executes one statement inside the open transaction, under a
  // per-statement savepoint: on failure the statement's effects are
  // undone and the transaction stays alive.
  Result<QueryResult> ExecuteInTxn(const Statement& stmt,
                                   std::string_view sql,
                                   const std::string& user, bool mutating);

  // Journals one committed statement and drives the fsync / auto-
  // checkpoint cadence.
  Status LogCommitted(std::string_view sql, const std::string& user,
                      uint64_t clock_before);

  // Journals the open transaction as one BEGIN-framed group (begin
  // marker, buffered statements, commit marker) with a single fsync.
  Status LogTxnCommitted();

  // Checkpoint body; the caller holds the exclusive engine lock.
  Status CheckpointLocked();

  // Latches the durable store unusable after a write-path failure left
  // the log in an untrustworthy state; every later commit fails with
  // FailedPrecondition until the database is reopened (recovery trims
  // the torn tail).
  void TearDownWal();

  // Re-executes one WAL record with its recorded user and clock value.
  Status ReplayRecord(const WalRecord& rec);

  // Checkpoint payload (de)serialization over the full engine state;
  // defined in src/wal/checkpoint.cc next to the file format.
  Result<std::string> SerializeSnapshot(uint64_t last_lsn) const;
  Status LoadSnapshot(std::string_view payload, uint64_t* last_lsn);

  // Durable-mode state; null for memory-only databases.
  struct Durable {
    std::string dir;
    DurabilityOptions options;
    WalEnv* env = nullptr;
    std::unique_ptr<DirLock> lock;  // exclusive dir/LOCK, lifetime-held
    std::unique_ptr<WalWriter> wal;
    uint64_t last_lsn = 0;
    uint64_t replayed_on_open = 0;
    uint64_t checkpoints_taken = 0;
    uint64_t checkpoint_failures = 0;
    uint64_t statements_since_checkpoint = 0;
    uint64_t wal_bytes_total = 0;  // across WalWriter reopens
    uint64_t wal_syncs_total = 0;

    std::string WalPath() const;
  };

  LogicalClock clock_;
  Catalog catalog_;
  AnnotationManager annotations_;
  ProvenanceManager provenance_;
  ProcedureRegistry procedures_;
  DependencyManager dependencies_;
  AccessControl access_;
  ApprovalManager approvals_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::vector<DeletionLogEntry>> deletion_log_;
  std::unique_ptr<Durable> dur_;

  // Compensation log for the statement/transaction currently executing
  // under rollback protection. Mutation paths across the engine record
  // their logical inverses here (docs/transactions.md).
  UndoLog undo_;

  // Coarse engine lock: shared for read-only statements, exclusive for
  // mutating ones and for the whole span of an open transaction.
  // Declared before txn_ so the transaction's unique_lock is destroyed
  // (and released) before the mutex itself.
  std::shared_mutex engine_mu_;

  // Owner token of the open transaction, or nullptr. Atomic so a session
  // can ask "is this mine?" without touching the engine lock it may be
  // about to block on.
  std::atomic<const void*> txn_owner_{nullptr};
  std::unique_ptr<Txn> txn_;  // non-null iff a transaction is open
};

}  // namespace bdbms

#endif  // BDBMS_CORE_DATABASE_H_
