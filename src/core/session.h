#ifndef BDBMS_CORE_SESSION_H_
#define BDBMS_CORE_SESSION_H_

#include <string>
#include <string_view>

#include "core/database.h"

namespace bdbms {

// One client's connection to the engine: a user identity plus transaction
// ownership. Statements issued through a Session run as its user, and a
// BEGIN executed here binds the open transaction to this session — other
// sessions block until it commits or rolls back (docs/transactions.md).
//
// Destroying a session with an open transaction rolls the transaction
// back — which also releases the transaction's MVCC snapshot, so a
// dropped network connection can never leave the engine locked, pin
// version garbage collection, or end up half-committed. A session must
// be used from one thread at a time, though not necessarily the *same*
// thread: the network server's worker pool hands each connection's
// statements to whichever worker is free, serialized per connection.
class Session {
 public:
  Session(Database* db, std::string user)
      : db_(db), user_(std::move(user)) {}

  ~Session() {
    if (db_->InTransaction(this)) {
      (void)db_->Execute("ROLLBACK", user_, this);
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Result<QueryResult> Execute(std::string_view sql) {
    return db_->Execute(sql, user_, this);
  }

  bool InTransaction() const { return db_->InTransaction(this); }

  const std::string& user() const { return user_; }

 private:
  Database* db_;
  std::string user_;
};

}  // namespace bdbms

#endif  // BDBMS_CORE_SESSION_H_
