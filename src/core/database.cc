#include "core/database.h"

#include "sql/parser.h"

namespace bdbms {

Database::Database()
    : annotations_(&clock_),
      provenance_(&annotations_),
      dependencies_(&catalog_, &procedures_),
      approvals_(&catalog_, &access_, &clock_) {}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table " + name);
  }
  return it->second.get();
}

DependencyManager::TableResolver Database::Resolver() {
  return [this](const std::string& name) { return GetTable(name); };
}

const std::vector<DeletionLogEntry>& Database::DeletionLog(
    const std::string& table) {
  return deletion_log_[table];
}

Result<DependencyManager::PropagationReport> Database::NotifyCellUpdated(
    const std::string& table, RowId row, size_t col) {
  return dependencies_.OnCellUpdated(table, row, col, Resolver());
}

ExecContext Database::MakeContext() {
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.annotations = &annotations_;
  ctx.provenance = &provenance_;
  ctx.dependencies = &dependencies_;
  ctx.approvals = &approvals_;
  ctx.access = &access_;
  ctx.clock = &clock_;
  ctx.tables = [this](const std::string& name) { return GetTable(name); };
  ctx.create_table = [this](const TableSchema& schema) -> Status {
    BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<Table> t,
                           Table::CreateInMemory(schema));
    tables_[schema.name()] = std::move(t);
    return Status::Ok();
  };
  ctx.drop_table = [this](const std::string& name) -> Status {
    if (tables_.erase(name) == 0) {
      return Status::NotFound("no table storage for " + name);
    }
    return Status::Ok();
  };
  ctx.deletion_log = &deletion_log_;
  return ctx;
}

Result<QueryResult> Database::Execute(std::string_view sql,
                                      const std::string& user) {
  BDBMS_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  Executor executor(MakeContext(), user);
  return executor.Execute(stmt);
}

}  // namespace bdbms
