#include "core/database.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <variant>

#include "sql/parser.h"
#include "wal/checkpoint.h"

namespace bdbms {

Database::Database()
    : annotations_(&clock_),
      provenance_(&annotations_),
      dependencies_(&catalog_, &procedures_),
      approvals_(&catalog_, &access_, &clock_) {
  // Every manager records its compensations into the currently bound undo
  // log (the autocommit log by default; a transaction's private log while
  // one of its statements runs), so a statement or transaction rollback
  // unwinds the whole engine state.
  catalog_.set_undo_log(&undo_);
  annotations_.set_undo_log(&undo_);
  dependencies_.set_undo_log(&undo_);
  access_.set_undo_log(&undo_);
  approvals_.set_undo_log(&undo_);
  annotations_.set_mvcc(&mvcc_state_);
}

Database::~Database() {
  if (dur_ && dur_->wal) {
    // Best-effort: a destructor cannot report a failed fsync. Call
    // Close() before destruction when the error matters.
    (void)dur_->wal->Sync();
  }
}

std::string Database::Durable::WalPath() const {
  return dir + "/" + kWalFileName;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table " + name);
  }
  return it->second.get();
}

DependencyManager::TableResolver Database::Resolver() {
  return [this](const std::string& name) { return GetTable(name); };
}

const std::vector<DeletionLogEntry>& Database::DeletionLog(
    const std::string& table) {
  return deletion_log_[table];
}

Result<DependencyManager::PropagationReport> Database::NotifyCellUpdated(
    const std::string& table, RowId row, size_t col) {
  return dependencies_.OnCellUpdated(table, row, col, Resolver());
}

Result<std::unique_ptr<Table>> Database::CreatePagedTable(
    const TableSchema& schema) {
  const std::string path = paged_->heap_dir + "/" + schema.name() + "." +
                           std::to_string(paged_->next_heap_file++) + ".heap";
  // A dead orphan from an earlier incarnation (GC runs only at open) may
  // occupy the name; start from a clean slate.
  for (const std::string& stale :
       {path, Pager::SpillPath(path), Pager::JournalPath(path)}) {
    if (paged_->env->FileExists(stale)) {
      BDBMS_RETURN_IF_ERROR(paged_->env->RemoveFile(stale));
    }
  }
  BDBMS_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> t,
      Table::OpenPaged(schema, paged_->env, path, paged_->pool_pages));
  t->set_readahead_pages(paged_->readahead_pages);
  return t;
}

ExecContext Database::MakeContext() {
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.annotations = &annotations_;
  ctx.provenance = &provenance_;
  ctx.dependencies = &dependencies_;
  ctx.approvals = &approvals_;
  ctx.access = &access_;
  ctx.clock = &clock_;
  ctx.tables = [this](const std::string& name) { return GetTable(name); };
  ctx.create_table = [this](const TableSchema& schema) -> Status {
    std::unique_ptr<Table> t;
    if (paged_ != nullptr) {
      BDBMS_ASSIGN_OR_RETURN(t, CreatePagedTable(schema));
    } else {
      BDBMS_ASSIGN_OR_RETURN(t, Table::CreateInMemory(schema));
    }
    UndoLog* undo = active_undo_.load(std::memory_order_acquire);
    t->set_undo_log(undo);
    t->set_mvcc(&mvcc_state_);
    if (undo->recording()) {
      undo->Record("create table storage " + schema.name(),
                   [this, name = schema.name()] { tables_.erase(name); });
    }
    tables_[schema.name()] = std::move(t);
    return Status::Ok();
  };
  ctx.drop_table = [this](const std::string& name) -> Status {
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("no table storage for " + name);
    }
    UndoLog* undo = active_undo_.load(std::memory_order_acquire);
    if (undo->recording()) {
      // Park the storage object instead of destroying it: ROLLBACK
      // re-inserts it wholesale, rows and indexes intact, no rebuild.
      auto held =
          std::make_shared<std::unique_ptr<Table>>(std::move(it->second));
      undo->Record("drop table storage " + name,
                   [this, name, held] { tables_[name] = std::move(*held); });
    }
    tables_.erase(it);
    return Status::Ok();
  };
  ctx.deletion_log = &deletion_log_;
  ctx.undo = active_undo_.load(std::memory_order_acquire);
  return ctx;
}

bool Database::InTransaction(const void* session) const {
  const void* token = session ? session : static_cast<const void*>(this);
  return FindTxn(token) != nullptr;
}

Database::TxnState* Database::FindTxn(const void* token) const {
  std::lock_guard<std::mutex> lock(txn_mu_);
  auto it = txns_.find(token);
  return it == txns_.end() ? nullptr : it->second.get();
}

bool Database::TableInvolved(const std::string& table) const {
  if (approvals_.configs().count(table) != 0) return true;
  for (const auto& [name, rule] : dependencies_.rules()) {
    if (rule.target.table == table) return true;
    for (const ColumnRef& src : rule.sources) {
      if (src.table == table) return true;
    }
  }
  return false;
}

Database::StmtClass Database::Classify(const Statement& stmt) const {
  // DML runs versioned under the shared gate as long as the target table
  // drives no cross-cutting machinery: no dependency rule reads or writes
  // it, and no approval config intercepts its writes. Everything else —
  // DDL, grants, approvals, ANALYZE, dependency-propagating updates —
  // keeps the PR-6 exclusive path.
  if (const auto* ins = std::get_if<InsertStmt>(&stmt.node)) {
    return TableInvolved(ins->table) ? StmtClass::kExclusive
                                     : StmtClass::kConcurrentDml;
  }
  if (const auto* upd = std::get_if<UpdateStmt>(&stmt.node)) {
    return TableInvolved(upd->table) ? StmtClass::kExclusive
                                     : StmtClass::kConcurrentDml;
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt.node)) {
    return TableInvolved(del->table) ? StmtClass::kExclusive
                                     : StmtClass::kConcurrentDml;
  }
  if (const auto* add = std::get_if<AddAnnotationStmt>(&stmt.node)) {
    const bool select_form =
        add->on == nullptr || std::holds_alternative<SelectStmt>(add->on->node);
    if (!select_form) return StmtClass::kExclusive;
    for (const auto& [table, ann] : add->targets) {
      if (TableInvolved(table)) return StmtClass::kExclusive;
    }
    return StmtClass::kConcurrentDml;
  }
  return StmtClass::kExclusive;
}

Result<QueryResult> Database::Execute(std::string_view sql,
                                      const std::string& user,
                                      const void* session) {
  const void* token = session ? session : static_cast<const void*>(this);
  BDBMS_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));

  if (const auto* txn = std::get_if<TxnStmt>(&stmt.node)) {
    switch (txn->kind) {
      case TxnStmt::Kind::kBegin:
        return BeginTxn(token);
      case TxnStmt::Kind::kCommit: {
        auto r = CommitTxn(token);
        MaybeDeferredCheckpoint();
        return r;
      }
      case TxnStmt::Kind::kRollback:
        return RollbackTxn(token);
    }
  }

  TxnState* t = FindTxn(token);

  // CHECKPOINT is handled here, not in the executor: it operates on the
  // WAL/checkpoint files the facade owns, and must never itself be
  // journaled (replaying it would re-truncate the log mid-recovery).
  if (std::holds_alternative<CheckpointStmt>(stmt.node)) {
    {
      SharedGateLock g(&gate_);
      if (!access_.IsSuperuser(user)) {
        return Status::PermissionDenied("only superusers may checkpoint");
      }
    }
    if (t) {
      // A checkpoint snapshots committed state; uncommitted transaction
      // effects must never reach the checkpoint file.
      return Status::FailedPrecondition(
          "CHECKPOINT cannot run inside a transaction");
    }
    if (!dur_) {
      SharedGateLock g(&gate_);
      Executor executor(MakeContext(), user);
      return executor.Execute(stmt);  // deliberate no-op + message
    }
    (void)LockExclusiveNoTxns(nullptr);
    Status s;
    uint64_t lsn = 0;
    {
      std::lock_guard<std::mutex> w(writer_mu_);
      s = CheckpointLocked();
      if (dur_) lsn = dur_->last_lsn;
    }
    gate_.UnlockExclusive();
    BDBMS_RETURN_IF_ERROR(s);
    QueryResult result;
    result.message = "CHECKPOINT complete (lsn " + std::to_string(lsn) + ")";
    return result;
  }

  const bool mutating = StatementMutatesState(stmt);

  if (t) {
    return ExecuteInTxn(t, stmt, sql, user, mutating);
  }

  if (!mutating) {
    return ExecuteRead(stmt, user);
  }

  // Autocommit: the statement is its own mini-transaction. Classification
  // happens under the shared gate (rule/approval changes are exclusive,
  // so the answer cannot shift mid-hold); concurrent DML then executes
  // under the same hold, everything else re-enters exclusively.
  auto result = [&]() -> Result<QueryResult> {
    {
      SharedGateLock g(&gate_);
      if (Classify(stmt) == StmtClass::kConcurrentDml) {
        return ExecuteConcurrent(stmt, sql, user);
      }
    }
    return ExecuteExclusive(stmt, sql, user);
  }();
  MaybeDeferredCheckpoint();
  return result;
}

Result<QueryResult> Database::ExecuteRead(const Statement& stmt,
                                          const std::string& user) {
  SharedGateLock g(&gate_);
  MvccSnapshot snap;
  {
    // Capture + registration are one atomic step under txn_mu_: the GC
    // computes the oldest live snapshot under the same mutex, so a
    // version can never be vacuumed between a reader choosing its CSN
    // and announcing it.
    std::lock_guard<std::mutex> lock(txn_mu_);
    snap.csn = last_completed_csn_.load(std::memory_order_acquire);
    read_snapshots_.insert(snap.csn);
  }
  ExecContext ctx = MakeContext();
  ctx.snapshot = &snap;
  Executor executor(std::move(ctx), user);
  auto result = executor.Execute(stmt);
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    read_snapshots_.erase(read_snapshots_.find(snap.csn));
  }
  TryVacuumAfterRead();
  return result;
}

Result<QueryResult> Database::ExecuteConcurrent(const Statement& stmt,
                                                std::string_view sql,
                                                const std::string& user) {
  // Caller holds the shared gate. writer_mu_ serializes this against
  // other mutating statements, commits and vacuums; readers sail past on
  // table latches and snapshot visibility.
  std::lock_guard<std::mutex> w(writer_mu_);
  if (dur_ && !dur_->wal) {
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  const uint64_t clock_before = clock_.Peek();
  PendingStatement ps;
  if (dur_) CaptureBases(&ps);
  MvccWriter writer;
  writer.txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  writer.snapshot_csn = last_completed_csn_.load(std::memory_order_acquire);
  MvccSnapshot snap{writer.snapshot_csn, writer.txn_id};
  undo_.Begin();
  mvcc_state_.writer = &writer;
  ExecContext ctx = MakeContext();
  ctx.snapshot = &snap;
  Executor executor(std::move(ctx), user);
  auto result = executor.Execute(stmt);
  mvcc_state_.writer = nullptr;
  if (!result.ok()) {
    // Mid-statement failure (including a first-updater-wins conflict):
    // compensate every partial effect, newest first, then restore the
    // clock so the failed attempt is invisible.
    undo_.RollbackAll();
    clock_.Reset(clock_before);
    return result.status();
  }
  undo_.Stop();
  ++mutation_epoch_;
  uint64_t csn = 0;
  if (!writer.rows.empty() || !writer.annotations.empty()) {
    csn = next_csn_.fetch_add(1, std::memory_order_relaxed);
    StampWriteSet(writer, csn);
    last_completed_csn_.store(csn, std::memory_order_release);
  }
  if (dur_) {
    ps.user = user;
    ps.sql = std::string(sql);
    ps.clock_before = clock_before;
    ps.versioned = 1;
    ps.snapshot = writer.snapshot_csn;
    BDBMS_RETURN_IF_ERROR(LogCommitted(ps, csn));
  }
  TryVacuumLocked();
  return result;
}

Result<QueryResult> Database::ExecuteExclusive(const Statement& stmt,
                                               std::string_view sql,
                                               const std::string& user) {
  // Cannot fail for a non-transaction caller: it waits (rather than
  // aborts) until open transactions drain.
  (void)LockExclusiveNoTxns(nullptr);
  auto result = [&]() -> Result<QueryResult> {
    std::lock_guard<std::mutex> w(writer_mu_);
    if (dur_ && !dur_->wal) {
      // The latch must refuse BEFORE execution: applying the statement
      // in memory and then reporting FailedPrecondition would let a
      // retrying caller stack up unjournaled in-memory effects.
      return Status::FailedPrecondition(
          "durable store is unusable after a write failure; reopen");
    }
    // No transaction and no reader is alive, so every retained version
    // is garbage; the legacy paths below expect chain-free heaps.
    VacuumAllLocked(UINT64_MAX);
    const uint64_t clock_before = clock_.Peek();
    PendingStatement ps;
    if (dur_) CaptureBases(&ps);
    undo_.Begin();
    Executor executor(MakeContext(), user);
    auto r = executor.Execute(stmt);
    if (!r.ok()) {
      undo_.RollbackAll();
      clock_.Reset(clock_before);
      return r.status();
    }
    undo_.Stop();
    ++mutation_epoch_;
    if (dur_) {
      ps.user = user;
      ps.sql = std::string(sql);
      ps.clock_before = clock_before;
      BDBMS_RETURN_IF_ERROR(LogCommitted(ps, 0));
    }
    return r;
  }();
  gate_.UnlockExclusive();
  return result;
}

Result<QueryResult> Database::BeginTxn(const void* token) {
  if (FindTxn(token)) {
    return Status::FailedPrecondition("transaction already in progress");
  }
  // writer_mu_ keeps the durable latch, clock and epoch reads consistent
  // with any in-flight commit; BEGIN never touches the gate, so any
  // number of transactions may be open at once.
  std::lock_guard<std::mutex> w(writer_mu_);
  if (dur_ && !dur_->wal) {
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  auto t = std::make_unique<TxnState>();
  t->undo = std::make_unique<UndoLog>();
  t->undo->Begin();
  t->clock_at_begin = clock_.Peek();
  t->epoch_at_begin = mutation_epoch_;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    t->txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
    t->snapshot =
        MvccSnapshot{last_completed_csn_.load(std::memory_order_acquire),
                     t->txn_id};
    t->writer.txn_id = t->txn_id;
    t->writer.snapshot_csn = t->snapshot.csn;
    txns_[token] = std::move(t);
  }
  QueryResult result;
  result.message = "BEGIN";
  return result;
}

Result<QueryResult> Database::CommitTxn(const void* token) {
  TxnState* t = FindTxn(token);
  if (!t) {
    return Status::FailedPrecondition("no transaction in progress");
  }
  if (t->doomed) {
    // A doomed transaction was already rolled back at the conflict; the
    // COMMIT merely closes it (PostgreSQL reports ROLLBACK here too).
    EndTxn(token);
    QueryResult result;
    result.message = "ROLLBACK";
    return result;
  }
  const size_t statements = t->pending.size();
  auto commit_body = [&]() -> Result<QueryResult> {
    std::lock_guard<std::mutex> w(writer_mu_);
    const bool wrote =
        !t->writer.rows.empty() || !t->writer.annotations.empty();
    uint64_t csn = 0;
    if (wrote) csn = next_csn_.fetch_add(1, std::memory_order_relaxed);
    if (dur_ && !t->pending.empty()) {
      Status logged = LogTxnCommitted(t, csn);
      if (!logged.ok()) {
        // The journal rejected the transaction, so it must not commit
        // in memory either: unwind everything and report the failure.
        BindUndo(t->undo.get());
        t->undo->RollbackAll();
        BindUndo(&undo_);
        t->writer.Clear();
        ApplyRollbackClockPolicy(*t);
        return logged;
      }
    }
    // Stamp before Stop(): a storage object parked by an in-transaction
    // DROP lives inside the undo log until Stop() releases it, and the
    // stamping pass needs the liveness filter to compare against it.
    StampWriteSet(t->writer, csn);
    t->undo->Stop();
    if (wrote) last_completed_csn_.store(csn, std::memory_order_release);
    QueryResult result;
    result.message = "COMMIT (" + std::to_string(statements) +
                     (statements == 1 ? " statement)" : " statements)");
    return result;
  };
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (t->escalated) return commit_body();  // gate already held exclusively
    SharedGateLock g(&gate_);
    return commit_body();
  }();
  EndTxn(token);
  {
    // Retire versions the finished snapshot was pinning.
    std::unique_lock<std::mutex> w(writer_mu_, std::try_to_lock);
    if (w.owns_lock()) TryVacuumLocked();
  }
  return result;
}

Result<QueryResult> Database::RollbackTxn(const void* token) {
  TxnState* t = FindTxn(token);
  if (!t) {
    return Status::FailedPrecondition("no transaction in progress");
  }
  if (!t->doomed) {
    auto rollback_body = [&] {
      std::lock_guard<std::mutex> w(writer_mu_);
      BindUndo(t->undo.get());
      t->undo->RollbackAll();
      BindUndo(&undo_);
      t->writer.Clear();
      ApplyRollbackClockPolicy(*t);
    };
    if (t->escalated) {
      rollback_body();
    } else {
      SharedGateLock g(&gate_);
      rollback_body();
    }
  }
  EndTxn(token);
  {
    std::unique_lock<std::mutex> w(writer_mu_, std::try_to_lock);
    if (w.owns_lock()) TryVacuumLocked();
  }
  QueryResult result;
  result.message = "ROLLBACK";
  return result;
}

void Database::EndTxn(const void* token) {
  bool escalated = false;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = txns_.find(token);
    if (it == txns_.end()) return;
    escalated = it->second->escalated;
    txns_.erase(it);
    // Wake escalation/checkpoint drains waiting for the registry to
    // empty out.
    txn_cv_.notify_all();
  }
  if (escalated) gate_.UnlockExclusive();
}

Result<QueryResult> Database::ExecuteInTxn(TxnState* t, const Statement& stmt,
                                           std::string_view sql,
                                           const std::string& user,
                                           bool mutating) {
  if (t->doomed) {
    return Status::FailedPrecondition(
        "transaction is aborted, commands ignored until end of "
        "transaction block");
  }
  if (!mutating) {
    if (t->escalated) {
      // The transaction owns the gate exclusively; legacy reads see its
      // in-place writes directly.
      Executor executor(MakeContext(), user);
      return executor.Execute(stmt);
    }
    SharedGateLock g(&gate_);
    ExecContext ctx = MakeContext();
    ctx.snapshot = &t->snapshot;
    Executor executor(std::move(ctx), user);
    return executor.Execute(stmt);
  }
  if (!t->escalated) {
    {
      SharedGateLock g(&gate_);
      if (Classify(stmt) == StmtClass::kConcurrentDml) {
        return ExecuteTxnDml(t, stmt, sql, user);
      }
    }
    // The statement needs the exclusive path: escalate. The shared hold
    // above is released first — waiting for exclusive while holding
    // shared would deadlock on ourselves.
    Status escalated = LockExclusiveNoTxns(t);
    if (!escalated.ok()) {
      std::lock_guard<std::mutex> w(writer_mu_);
      DoomLocked(t);
      return escalated;
    }
    t->escalated = true;
    {
      std::lock_guard<std::mutex> w(writer_mu_);
      t->clock_at_escalation = clock_.Peek();
      // Only this transaction is alive, and from here on it reads the
      // newest state (its snapshot is abandoned); every retained version
      // is garbage. Its own uncommitted versions survive — their events
      // carry a txn id, not a CSN, so the vacuum keeps them.
      VacuumAllLocked(UINT64_MAX);
    }
  }
  return ExecuteTxnExclusive(t, stmt, sql, user);
}

Result<QueryResult> Database::ExecuteTxnDml(TxnState* t, const Statement& stmt,
                                            std::string_view sql,
                                            const std::string& user) {
  // Caller holds the shared gate.
  std::lock_guard<std::mutex> w(writer_mu_);
  if (dur_ && !dur_->wal) {
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  const uint64_t clock_before = clock_.Peek();
  PendingStatement ps;
  if (dur_) CaptureBases(&ps);
  BindUndo(t->undo.get());
  const UndoLog::Mark mark = t->undo->MarkPoint();
  mvcc_state_.writer = &t->writer;
  ExecContext ctx = MakeContext();
  ctx.snapshot = &t->snapshot;
  Executor executor(std::move(ctx), user);
  auto result = executor.Execute(stmt);
  mvcc_state_.writer = nullptr;
  if (!result.ok()) {
    if (result.status().IsSerializationFailure()) {
      // First updater wins, and this transaction lost: per snapshot
      // isolation the whole transaction aborts, not just the statement.
      DoomLocked(t);
      BindUndo(&undo_);
      return result.status();
    }
    // Statement-level savepoint: undo this statement's effects only; the
    // transaction stays open.
    t->undo->RollbackTo(mark);
    clock_.Reset(clock_before);
    BindUndo(&undo_);
    return result.status();
  }
  BindUndo(&undo_);
  ++mutation_epoch_;
  ++t->own_mutations;
  if (dur_) {
    ps.user = user;
    ps.sql = std::string(sql);
    ps.clock_before = clock_before;
    ps.versioned = 1;
    ps.snapshot = t->snapshot.csn;
    t->pending.push_back(std::move(ps));
  }
  return result;
}

Result<QueryResult> Database::ExecuteTxnExclusive(TxnState* t,
                                                  const Statement& stmt,
                                                  std::string_view sql,
                                                  const std::string& user) {
  // The transaction holds the gate exclusively; writer_mu_ still guards
  // the durable counters against durability_stats() observers.
  std::lock_guard<std::mutex> w(writer_mu_);
  if (dur_ && !dur_->wal) {
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  const uint64_t clock_before = clock_.Peek();
  PendingStatement ps;
  if (dur_) CaptureBases(&ps);
  BindUndo(t->undo.get());
  const UndoLog::Mark mark = t->undo->MarkPoint();
  Executor executor(MakeContext(), user);
  auto result = executor.Execute(stmt);
  if (!result.ok()) {
    t->undo->RollbackTo(mark);
    clock_.Reset(clock_before);
    BindUndo(&undo_);
    return result.status();
  }
  BindUndo(&undo_);
  ++mutation_epoch_;
  ++t->own_mutations;
  if (dur_) {
    ps.user = user;
    ps.sql = std::string(sql);
    ps.clock_before = clock_before;
    t->pending.push_back(std::move(ps));
  }
  return result;
}

void Database::DoomLocked(TxnState* t) {
  t->undo->RollbackAll();
  t->writer.Clear();
  t->pending.clear();
  // The doomed flag also un-pins the transaction's snapshot from GC
  // (ComputeOldestCsnLocked skips doomed entries), so an abandoned
  // conflicted session cannot stall version reclamation.
  t->doomed = true;
}

Status Database::LockExclusiveNoTxns(const TxnState* self) {
  if (self) {
    std::lock_guard<std::mutex> lock(txn_mu_);
    if (escalations_waiting_ > 0) {
      // Two open transactions draining each other would deadlock; the
      // later one aborts instead.
      return Status::SerializationFailure(
          "serialization failure, retry transaction (concurrent "
          "transaction is escalating to exclusive)");
    }
    ++escalations_waiting_;
  }
  for (;;) {
    gate_.LockExclusive();
    std::unique_lock<std::mutex> lock(txn_mu_);
    bool others = false;
    for (const auto& [tok, txn] : txns_) {
      if (txn.get() != self) {
        others = true;
        break;
      }
    }
    if (!others) {
      if (self) --escalations_waiting_;
      return Status::Ok();  // exclusive gate held
    }
    // Open transactions do not hold the gate between statements, so
    // releasing it here lets them finish; EndTxn signals the retry.
    gate_.UnlockExclusive();
    txn_cv_.wait(lock);
  }
}

void Database::BindUndo(UndoLog* undo) {
  active_undo_.store(undo, std::memory_order_release);
  catalog_.set_undo_log(undo);
  annotations_.set_undo_log(undo);
  dependencies_.set_undo_log(undo);
  access_.set_undo_log(undo);
  approvals_.set_undo_log(undo);
  for (auto& [name, table] : tables_) table->set_undo_log(undo);
}

void Database::StampWriteSet(MvccWriter& writer, uint64_t csn) {
  if (writer.rows.empty() && writer.annotations.empty()) return;
  // Filter against live storage: a table dropped later in the same
  // transaction took its pending versions with it.
  std::set<const Table*> live_tables;
  for (const auto& [name, table] : tables_) live_tables.insert(table.get());
  for (const auto& [table, row] : writer.rows) {
    if (live_tables.count(table)) table->CommitRow(row, writer.txn_id, csn);
  }
  if (!writer.annotations.empty()) {
    std::set<const AnnotationTable*> live_anns;
    annotations_.ForEachTable(
        [&](const std::string&, AnnotationTable* at) { live_anns.insert(at); });
    for (const auto& [at, id] : writer.annotations) {
      if (live_anns.count(at)) at->CommitAnnotation(id, writer.txn_id, csn);
    }
  }
  writer.Clear();
}

void Database::CaptureBases(PendingStatement* ps) const {
  for (const auto& [name, table] : tables_) {
    ps->row_bases.emplace_back(name, table->next_row_id());
  }
  annotations_.ForEachTable([&](const std::string& key, AnnotationTable* at) {
    ps->ann_bases.emplace_back(key, at->next_id());
  });
}

void Database::ApplyReplayBases(const WalRecord& rec) {
  // Statement records carry the counters the statement *allocated from*
  // and must restore them exactly: group commit appends a transaction's
  // statements at COMMIT time, so a concurrently committed record that
  // landed earlier in the log can carry counters captured later — a
  // monotonic advance would then replay the ids too high. The commit
  // marker carries the counters as of COMMIT and is applied as a
  // max-advance, restoring the end-of-group high-water mark that other
  // transactions' statement-time allocations pushed past this group's.
  const bool exact = rec.kind != WalRecordKind::kTxnCommit;
  for (const auto& [name, base] : rec.row_bases) {
    auto it = tables_.find(name);
    if (it == tables_.end()) continue;
    if (exact) {
      it->second->SetNextRowId(base);
    } else {
      it->second->AdvanceNextRowId(base);
    }
  }
  if (!rec.ann_bases.empty()) {
    std::map<std::string, uint64_t> want(rec.ann_bases.begin(),
                                         rec.ann_bases.end());
    annotations_.ForEachTable([&](const std::string& key, AnnotationTable* at) {
      auto it = want.find(key);
      if (it == want.end()) return;
      if (exact) {
        at->SetNextId(it->second);
      } else {
        at->AdvanceNextId(it->second);
      }
    });
  }
}

uint64_t Database::ComputeOldestCsnLocked() const {
  uint64_t oldest = UINT64_MAX;
  for (const auto& [tok, t] : txns_) {
    // Doomed transactions rolled back already; escalated ones read the
    // newest state directly. Neither needs its snapshot any more.
    if (!t->doomed && !t->escalated) {
      oldest = std::min(oldest, t->snapshot.csn);
    }
  }
  if (!read_snapshots_.empty()) {
    oldest = std::min(oldest, *read_snapshots_.begin());
  }
  return oldest;
}

void Database::VacuumAllLocked(uint64_t oldest_csn) {
  for (auto& [name, table] : tables_) table->Vacuum(oldest_csn);
}

void Database::TryVacuumLocked() {
  uint64_t oldest;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    oldest = ComputeOldestCsnLocked();
  }
  VacuumAllLocked(oldest);
}

void Database::TryVacuumAfterRead() {
  // A finished reader may have been the oldest snapshot. Skip if a
  // mutating statement currently owns writer_mu_ — its commit will
  // vacuum anyway.
  std::unique_lock<std::mutex> w(writer_mu_, std::try_to_lock);
  if (!w.owns_lock()) return;
  TryVacuumLocked();
}

void Database::ApplyRollbackClockPolicy(const TxnState& t) {
  if (mutation_epoch_ == t.epoch_at_begin + t.own_mutations) {
    // No foreign mutation interleaved: rewinding to BEGIN reproduces the
    // PR-6 exclusive-transaction behavior bit for bit.
    clock_.Reset(t.clock_at_begin);
  } else if (t.escalated) {
    // Interleaving happened before the escalation; everything after it
    // ran exclusively, so the escalation point is a safe rewind target.
    clock_.Reset(t.clock_at_escalation);
  }
  // Otherwise: concurrent history, the clock only moves forward.
}

uint64_t Database::version_count() const {
  std::lock_guard<std::mutex> w(writer_mu_);
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) total += table->version_count();
  return total;
}

Status Database::LogCommitted(const PendingStatement& ps, uint64_t csn) {
  if (!dur_->wal) {
    // Unreachable via Execute (the latch refuses before execution);
    // kept as defense for future direct callers.
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  WalRecord rec;
  rec.lsn = dur_->last_lsn + 1;
  rec.clock = ps.clock_before;
  rec.user = ps.user;
  rec.sql = ps.sql;
  rec.versioned = ps.versioned;
  rec.snapshot = ps.snapshot;
  rec.csn = csn;
  rec.row_bases = ps.row_bases;
  rec.ann_bases = ps.ann_bases;
  Status appended = dur_->wal->Append(rec);
  if (!appended.ok()) {
    // The log may now end in a torn record. Latch the writer dead: a
    // later commit appended after torn bytes would be fsync-acked yet
    // silently discarded by recovery (the scan stops at the tear).
    TearDownWal();
    return appended;
  }
  dur_->last_lsn = rec.lsn;
  uint64_t interval = dur_->options.group_commit_interval;
  if (interval == 0) interval = 1;
  if (dur_->wal->unsynced() >= interval) {
    Status synced = dur_->wal->Sync();
    if (!synced.ok()) {
      // After a failed fsync the kernel may have dropped the dirty
      // pages; nothing appended afterwards could be trusted either.
      TearDownWal();
      return synced;
    }
  }
  ++dur_->statements_since_checkpoint;
  if (dur_->options.checkpoint_interval > 0 &&
      dur_->statements_since_checkpoint >= dur_->options.checkpoint_interval) {
    // The statement IS durably committed at this point, and this thread
    // may hold only the shared gate — the checkpoint itself needs the
    // exclusive side. Defer it to after the hold ends; a failure there
    // is recorded and retried, never reported against this statement.
    checkpoint_due_.store(true, std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status Database::LogTxnCommitted(TxnState* t, uint64_t csn) {
  if (!dur_->wal) {
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  uint64_t lsn = dur_->last_lsn;
  auto append = [&](WalRecord rec) -> Status {
    rec.lsn = ++lsn;
    Status appended = dur_->wal->Append(rec);
    if (!appended.ok()) {
      // Same latch discipline as LogCommitted. A partially appended
      // group is harmless on its own — recovery discards any begin
      // marker without a commit marker — but nothing appended after the
      // tear could be trusted.
      TearDownWal();
    }
    return appended;
  };
  WalRecord begin;
  begin.clock = t->clock_at_begin;
  begin.kind = WalRecordKind::kTxnBegin;
  BDBMS_RETURN_IF_ERROR(append(std::move(begin)));
  uint8_t any_versioned = 0;
  for (const PendingStatement& p : t->pending) {
    WalRecord rec;
    rec.clock = p.clock_before;
    rec.user = p.user;
    rec.sql = p.sql;
    rec.kind = WalRecordKind::kStatement;
    rec.versioned = p.versioned;
    rec.snapshot = p.snapshot;
    rec.row_bases = p.row_bases;
    rec.ann_bases = p.ann_bases;
    any_versioned |= p.versioned;
    BDBMS_RETURN_IF_ERROR(append(std::move(rec)));
  }
  WalRecord commit;
  commit.clock = clock_.Peek();
  commit.kind = WalRecordKind::kTxnCommit;
  commit.versioned = any_versioned;
  commit.csn = csn;
  {
    // Commit-time id counters: replay applies these as a max-advance
    // after the group's members, restoring the high-water mark that
    // other transactions' statement-time allocations pushed past this
    // group's own (see ApplyReplayBases).
    PendingStatement commit_bases;
    CaptureBases(&commit_bases);
    commit.row_bases = std::move(commit_bases.row_bases);
    commit.ann_bases = std::move(commit_bases.ann_bases);
  }
  BDBMS_RETURN_IF_ERROR(append(std::move(commit)));
  // One fsync covers the whole group: the transaction is durable exactly
  // when its commit marker is. group_commit_interval batches autocommit
  // statements, never transactions.
  Status synced = dur_->wal->Sync();
  if (!synced.ok()) {
    TearDownWal();
    return synced;
  }
  dur_->last_lsn = lsn;
  dur_->statements_since_checkpoint += t->pending.size();
  if (dur_->options.checkpoint_interval > 0 &&
      dur_->statements_since_checkpoint >= dur_->options.checkpoint_interval) {
    checkpoint_due_.store(true, std::memory_order_relaxed);
  }
  return Status::Ok();
}

void Database::MaybeDeferredCheckpoint() {
  if (!dur_ || !checkpoint_due_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    // Open transactions park uncommitted effects in the heaps; the
    // checkpoint waits for a later statement to retry instead of
    // freezing them into the snapshot.
    if (!txns_.empty()) return;
  }
  ExclusiveGateLock g(&gate_);
  std::lock_guard<std::mutex> w(writer_mu_);
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    // BEGIN needs writer_mu_, which we hold, so the re-check is stable.
    if (!txns_.empty()) return;
  }
  if (!checkpoint_due_.exchange(false, std::memory_order_relaxed)) return;
  if (!dur_->wal) return;
  Status ckpt = CheckpointLocked();
  if (!ckpt.ok()) {
    // The triggering statement is durably committed and the log intact;
    // record the failure and retry at the next statement.
    ++dur_->checkpoint_failures;
  }
}

void Database::TearDownWal() {
  if (!dur_ || !dur_->wal) return;
  // Fold the dying writer's counters into the running totals so
  // durability_stats() never goes backwards after a write failure.
  dur_->wal_bytes_total += dur_->wal->bytes_appended();
  dur_->wal_syncs_total += dur_->wal->syncs();
  dur_->wal.reset();
}

Status Database::Checkpoint() {
  (void)LockExclusiveNoTxns(nullptr);
  Status s;
  {
    std::lock_guard<std::mutex> w(writer_mu_);
    s = CheckpointLocked();
  }
  gate_.UnlockExclusive();
  return s;
}

Status Database::CheckpointLocked() {
  if (!dur_) {
    return Status::FailedPrecondition("not a durable database");
  }
  if (!dur_->wal) {
    return Status::FailedPrecondition(
        "durable store is unusable after a failed checkpoint; reopen");
  }
  // Commit everything the snapshot will claim to cover. A failed fsync
  // poisons the log the same way it does in LogCommitted — the kernel
  // may have dropped the dirty pages — so the writer must latch dead
  // rather than let later appends be acked over a hole.
  Status synced = dur_->wal->Sync();
  if (!synced.ok()) {
    TearDownWal();
    return synced;
  }
  // Incremental page checkpoint, phase 1: every paged heap flushes its
  // pool and stages dirty pages durably (base extensions directly, base
  // overwrites in a redo journal) under the candidate generation. The
  // overlays are untouched, so a failure here is an ordinary retryable
  // error — the committed checkpoint and log are still authoritative.
  const uint64_t gen = paged_ ? paged_->checkpoint_gen + 1 : 0;
  for (auto& [name, table] : tables_) {
    (void)name;
    BDBMS_RETURN_IF_ERROR(table->CheckpointPrepare(gen));
  }
  BDBMS_ASSIGN_OR_RETURN(std::string payload,
                         SerializeSnapshot(dur_->last_lsn, gen));
  BDBMS_RETURN_IF_ERROR(WriteCheckpointFile(dur_->env, dur_->dir, payload));
  // The rename above is the commit point; only now is it safe to drop the
  // log. A crash in between leaves records with lsn <= the checkpoint's,
  // which recovery skips by lsn.
  //
  // Phase 2: write journaled pages home and reset the overlays. After the
  // rename the new manifest (plus the journals naming `gen`) is the
  // authoritative state; if writing home fails the in-memory engine can
  // no longer prove it matches it, so latch the store — reopening runs
  // the same journal application from a clean slate.
  for (auto& [name, table] : tables_) {
    (void)name;
    Status committed = table->CheckpointCommit();
    if (!committed.ok()) {
      TearDownWal();
      return committed;
    }
  }
  if (paged_) paged_->checkpoint_gen = gen;
  dur_->wal_bytes_total += dur_->wal->bytes_appended();
  dur_->wal_syncs_total += dur_->wal->syncs();
  dur_->wal.reset();
  BDBMS_RETURN_IF_ERROR(dur_->env->TruncateFile(dur_->WalPath(), 0));
  BDBMS_ASSIGN_OR_RETURN(dur_->wal,
                         WalWriter::Open(dur_->env, dur_->WalPath()));
  dur_->statements_since_checkpoint = 0;
  ++dur_->checkpoints_taken;
  return Status::Ok();
}

Status Database::Close() {
  (void)LockExclusiveNoTxns(nullptr);
  Status s = Status::Ok();
  {
    std::lock_guard<std::mutex> w(writer_mu_);
    if (dur_) {
      if (dur_->wal) {
        s = dur_->wal->Sync();
        TearDownWal();
      }
      // The store stays latched (dur_ alive, writer gone): a mutation
      // after Close must refuse rather than silently run memory-only
      // with no journaling. Only the dir lock is released, so the
      // directory can be reopened — including after a failed sync,
      // where reopening is how the caller recovers (the torn tail is
      // trimmed).
      dur_->lock.reset();
    }
  }
  gate_.UnlockExclusive();
  return s;
}

DurabilityStats Database::durability_stats() const {
  std::lock_guard<std::mutex> w(writer_mu_);
  DurabilityStats stats;
  if (!dur_) return stats;
  stats.last_lsn = dur_->last_lsn;
  stats.replayed_on_open = dur_->replayed_on_open;
  stats.checkpoints_taken = dur_->checkpoints_taken;
  stats.checkpoint_failures = dur_->checkpoint_failures;
  stats.wal_bytes_appended =
      dur_->wal_bytes_total + (dur_->wal ? dur_->wal->bytes_appended() : 0);
  stats.wal_syncs =
      dur_->wal_syncs_total + (dur_->wal ? dur_->wal->syncs() : 0);
  stats.statements_since_checkpoint = dur_->statements_since_checkpoint;
  return stats;
}

void Database::AdvanceCsn(uint64_t csn) {
  if (csn >= next_csn_.load(std::memory_order_relaxed)) {
    next_csn_.store(csn + 1, std::memory_order_relaxed);
  }
  if (csn > last_completed_csn_.load(std::memory_order_relaxed)) {
    last_completed_csn_.store(csn, std::memory_order_relaxed);
  }
}

Status Database::ReplayRecord(const WalRecord& rec, MvccWriter* group_writer) {
  auto parsed = ParseStatement(rec.sql);
  if (!parsed.ok()) {
    return Status::Corruption("WAL replay: lsn " + std::to_string(rec.lsn) +
                              " does not parse: " + parsed.status().message());
  }
  // Restore the exact clock value and id counters the statement
  // originally saw, so every timestamp/id handed out during replay
  // matches the original run (aborted transactions burned ids the log
  // never shows).
  clock_.Reset(rec.clock);
  ApplyReplayBases(rec);
  auto result = [&]() -> Result<QueryResult> {
    if (rec.versioned) {
      // Re-create the original execution mode: an MVCC writer plus the
      // journaled snapshot, so visibility decisions replay bit for bit
      // against the version stamps of earlier replayed commits.
      MvccWriter local;
      MvccWriter* writer = group_writer;
      if (writer == nullptr) {
        local.txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
        local.snapshot_csn = rec.snapshot;
        writer = &local;
      }
      MvccSnapshot snap{rec.snapshot, writer->txn_id};
      mvcc_state_.writer = writer;
      ExecContext ctx = MakeContext();
      ctx.snapshot = &snap;
      Executor executor(std::move(ctx), rec.user);
      auto r = executor.Execute(*parsed);
      mvcc_state_.writer = nullptr;
      if (r.ok() && writer == &local) {
        // Autocommit record: stamp with the journaled commit CSN now.
        if (rec.csn != 0) {
          StampWriteSet(local, rec.csn);
          AdvanceCsn(rec.csn);
        } else {
          local.Clear();
        }
      }
      return r;
    }
    Executor executor(MakeContext(), rec.user);
    return executor.Execute(*parsed);
  }();
  if (!result.ok()) {
    return Status::Corruption(
        "WAL replay diverged at lsn " + std::to_string(rec.lsn) + " (" +
        rec.sql + "): " + result.status().message() +
        " — if the statement is CREATE DEPENDENCY, the procedure registry "
        "must be re-populated via DurabilityOptions::bootstrap");
  }
  return Status::Ok();
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 DurabilityOptions options) {
  WalEnv* env = options.env ? options.env : WalEnv::Default();
  BDBMS_RETURN_IF_ERROR(env->CreateDir(dir));
  // Exclusive dir lock for the Database's lifetime: a second simultaneous
  // open would interleave O_APPEND frames into wal.log and corrupt
  // acknowledged commits. flock-based, so a crashed holder self-clears.
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<DirLock> lock, env->LockDir(dir));

  auto db = std::unique_ptr<Database>(new Database());
  // Paged-heap wiring precedes everything that can create tables: WAL
  // replay re-executes CREATE TABLE statements before `dur_` exists.
  {
    auto paged = std::make_unique<PagedStorage>();
    paged->env = env;
    paged->heap_dir = dir + "/heap";
    paged->pool_pages = options.buffer_pool_pages;
    paged->readahead_pages = options.readahead_pages;
    BDBMS_RETURN_IF_ERROR(env->CreateDir(paged->heap_dir));
    db->paged_ = std::move(paged);
  }
  if (options.bootstrap) {
    BDBMS_RETURN_IF_ERROR(options.bootstrap(*db));
  }

  const std::string wal_path = dir + "/" + kWalFileName;
  const std::string ckpt_path = dir + "/" + kCheckpointFileName;
  const std::string tmp_path = dir + "/" + kCheckpointTmpFileName;

  // A leftover .tmp is a checkpoint that never reached its rename commit
  // point: the previous checkpoint + full log are authoritative.
  if (env->FileExists(tmp_path)) {
    BDBMS_RETURN_IF_ERROR(env->RemoveFile(tmp_path));
  }

  uint64_t last_lsn = 0;
  if (env->FileExists(ckpt_path)) {
    BDBMS_ASSIGN_OR_RETURN(std::string payload, ReadCheckpointFile(dir));
    BDBMS_RETURN_IF_ERROR(db->LoadSnapshot(payload, &last_lsn));
    // Snapshot-loaded tables must record compensations and version rows
    // like freshly created ones. Their reloaded rows carry no version
    // metadata — everything in a checkpoint is ancient (committed before
    // any snapshot that can ever be taken again).
    for (auto& [name, table] : db->tables_) {
      table->set_undo_log(&db->undo_);
      table->set_mvcc(&db->mvcc_state_);
    }
  }

  {
    // Garbage-collect heap files no checkpointed table references: heaps
    // of an incarnation that never reached a checkpoint (WAL replay
    // rebuilds those tables from scratch), orphans of dropped or
    // rolled-back CREATEs, and stale overlay files. Runs before replay so
    // replayed CREATEs start from a clean directory.
    std::set<std::string> keep;
    for (const auto& [name, table] : db->tables_) {
      if (!table->paged()) continue;
      keep.insert(table->heap_file_name());
      keep.insert(table->heap_file_name() + ".spill");
    }
    BDBMS_ASSIGN_OR_RETURN(std::vector<std::string> files,
                           env->ListDir(db->paged_->heap_dir));
    for (const std::string& f : files) {
      if (keep.count(f) != 0) continue;
      BDBMS_RETURN_IF_ERROR(env->RemoveFile(db->paged_->heap_dir + "/" + f));
    }
  }

  uint64_t replayed = 0;
  if (env->FileExists(wal_path)) {
    BDBMS_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(wal_path));
    BDBMS_ASSIGN_OR_RETURN(WalScan scan, ScanWal(data));
    bool dangling = false;
    uint64_t truncate_at = 0;
    const size_t n = scan.records.size();
    size_t i = 0;
    while (i < n) {
      const WalRecord& rec = scan.records[i];
      if (rec.kind == WalRecordKind::kStatement) {
        if (rec.lsn > last_lsn) {  // else already in the checkpoint
          BDBMS_RETURN_IF_ERROR(db->ReplayRecord(rec, nullptr));
          last_lsn = rec.lsn;
          ++replayed;
        }
        ++i;
        continue;
      }
      if (rec.kind == WalRecordKind::kTxnCommit) {
        return Status::Corruption(
            "WAL: commit marker without an open transaction at lsn " +
            std::to_string(rec.lsn));
      }
      // kTxnBegin: the group counts only if its commit marker made it
      // into the valid prefix. A dangling group is the expected shape of
      // a crash mid-commit — discard it, and everything after it, by
      // truncating at the begin marker's byte offset (later appends must
      // extend the last record recovery acknowledged).
      size_t end = i + 1;
      while (end < n && scan.records[end].kind == WalRecordKind::kStatement) {
        ++end;
      }
      if (end == n || scan.records[end].kind != WalRecordKind::kTxnCommit) {
        dangling = true;
        truncate_at = scan.record_offsets[i];
        break;
      }
      // Versioned members share one writer (they were one transaction);
      // the commit marker's journaled CSN stamps the whole write set.
      MvccWriter group_writer;
      bool have_writer = false;
      for (size_t k = i + 1; k < end; ++k) {
        const WalRecord& member = scan.records[k];
        if (member.lsn <= last_lsn) continue;
        MvccWriter* w = nullptr;
        if (member.versioned) {
          if (!have_writer) {
            group_writer.txn_id =
                db->next_txn_id_.fetch_add(1, std::memory_order_relaxed);
            group_writer.snapshot_csn = member.snapshot;
            have_writer = true;
          }
          w = &group_writer;
        }
        BDBMS_RETURN_IF_ERROR(db->ReplayRecord(member, w));
        ++replayed;
      }
      const WalRecord& commit = scan.records[end];
      if (commit.lsn > last_lsn) {
        if (have_writer) {
          if (commit.csn != 0) {
            db->StampWriteSet(group_writer, commit.csn);
            db->AdvanceCsn(commit.csn);
          } else {
            group_writer.Clear();
          }
        }
        db->ApplyReplayBases(commit);
      }
      last_lsn = std::max(last_lsn, commit.lsn);
      i = end + 1;
    }
    if (dangling) {
      BDBMS_RETURN_IF_ERROR(env->TruncateFile(wal_path, truncate_at));
    } else if (scan.tail_discarded) {
      // Cut the torn/corrupt tail so future appends extend valid data.
      BDBMS_RETURN_IF_ERROR(env->TruncateFile(wal_path, scan.valid_bytes));
    }
  }
  // Replay is serial and every replayed commit is final: no snapshot
  // survives a reopen, so every retained version is garbage.
  db->VacuumAllLocked(UINT64_MAX);

  auto dur = std::make_unique<Durable>();
  dur->dir = dir;
  dur->options = std::move(options);
  dur->env = env;
  dur->lock = std::move(lock);
  dur->last_lsn = last_lsn;
  dur->replayed_on_open = replayed;
  const bool wal_existed = env->FileExists(wal_path);
  BDBMS_ASSIGN_OR_RETURN(dur->wal, WalWriter::Open(env, wal_path));
  if (!wal_existed) {
    // The wal.log dirent itself must be durable before any fsync-acked
    // commit relies on it: file data survives a power cut only if the
    // directory entry does too (the LevelDB/SQLite create-then-sync-dir
    // pattern).
    BDBMS_RETURN_IF_ERROR(env->SyncDir(dir));
  }
  db->dur_ = std::move(dur);
  return db;
}

}  // namespace bdbms
