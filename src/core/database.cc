#include "core/database.h"

#include <algorithm>
#include <mutex>
#include <variant>

#include "sql/parser.h"
#include "wal/checkpoint.h"

namespace bdbms {

Database::Database()
    : annotations_(&clock_),
      provenance_(&annotations_),
      dependencies_(&catalog_, &procedures_),
      approvals_(&catalog_, &access_, &clock_) {
  // Every manager records its compensations into the shared undo log, so
  // a statement or transaction rollback unwinds the whole engine state.
  catalog_.set_undo_log(&undo_);
  annotations_.set_undo_log(&undo_);
  dependencies_.set_undo_log(&undo_);
  access_.set_undo_log(&undo_);
  approvals_.set_undo_log(&undo_);
}

Database::~Database() {
  if (dur_ && dur_->wal) {
    // Best-effort: a destructor cannot report a failed fsync. Call
    // Close() before destruction when the error matters.
    (void)dur_->wal->Sync();
  }
}

std::string Database::Durable::WalPath() const {
  return dir + "/" + kWalFileName;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table " + name);
  }
  return it->second.get();
}

DependencyManager::TableResolver Database::Resolver() {
  return [this](const std::string& name) { return GetTable(name); };
}

const std::vector<DeletionLogEntry>& Database::DeletionLog(
    const std::string& table) {
  return deletion_log_[table];
}

Result<DependencyManager::PropagationReport> Database::NotifyCellUpdated(
    const std::string& table, RowId row, size_t col) {
  return dependencies_.OnCellUpdated(table, row, col, Resolver());
}

ExecContext Database::MakeContext() {
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.annotations = &annotations_;
  ctx.provenance = &provenance_;
  ctx.dependencies = &dependencies_;
  ctx.approvals = &approvals_;
  ctx.access = &access_;
  ctx.clock = &clock_;
  ctx.tables = [this](const std::string& name) { return GetTable(name); };
  ctx.create_table = [this](const TableSchema& schema) -> Status {
    BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<Table> t,
                           Table::CreateInMemory(schema));
    t->set_undo_log(&undo_);
    if (undo_.recording()) {
      undo_.Record("create table storage " + schema.name(),
                   [this, name = schema.name()] { tables_.erase(name); });
    }
    tables_[schema.name()] = std::move(t);
    return Status::Ok();
  };
  ctx.drop_table = [this](const std::string& name) -> Status {
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("no table storage for " + name);
    }
    if (undo_.recording()) {
      // Park the storage object instead of destroying it: ROLLBACK
      // re-inserts it wholesale, rows and indexes intact, no rebuild.
      auto held =
          std::make_shared<std::unique_ptr<Table>>(std::move(it->second));
      undo_.Record("drop table storage " + name,
                   [this, name, held] { tables_[name] = std::move(*held); });
    }
    tables_.erase(it);
    return Status::Ok();
  };
  ctx.deletion_log = &deletion_log_;
  ctx.undo = &undo_;
  return ctx;
}

Result<QueryResult> Database::Execute(std::string_view sql,
                                      const std::string& user,
                                      const void* session) {
  const void* token = session ? session : static_cast<const void*>(this);
  BDBMS_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));

  if (const auto* txn = std::get_if<TxnStmt>(&stmt.node)) {
    switch (txn->kind) {
      case TxnStmt::Kind::kBegin:
        return BeginTxn(token);
      case TxnStmt::Kind::kCommit:
        return CommitTxn(token);
      case TxnStmt::Kind::kRollback:
        return RollbackTxn(token);
    }
  }

  const bool owns_txn = InTransaction(session);

  // CHECKPOINT is handled here, not in the executor: it operates on the
  // WAL/checkpoint files the facade owns, and must never itself be
  // journaled (replaying it would re-truncate the log mid-recovery).
  if (std::holds_alternative<CheckpointStmt>(stmt.node)) {
    if (!access_.IsSuperuser(user)) {
      return Status::PermissionDenied("only superusers may checkpoint");
    }
    if (owns_txn) {
      // A checkpoint snapshots committed state; uncommitted transaction
      // effects must never reach the checkpoint file.
      return Status::FailedPrecondition(
          "CHECKPOINT cannot run inside a transaction");
    }
    std::unique_lock<std::shared_mutex> lock(engine_mu_);
    if (!dur_) {
      Executor executor(MakeContext(), user);
      return executor.Execute(stmt);  // deliberate no-op + message
    }
    BDBMS_RETURN_IF_ERROR(CheckpointLocked());
    QueryResult result;
    result.message =
        "CHECKPOINT complete (lsn " + std::to_string(dur_->last_lsn) + ")";
    return result;
  }

  const bool mutating = StatementMutatesState(stmt);

  if (owns_txn) {
    // The session's BEGIN already holds the exclusive engine lock.
    return ExecuteInTxn(stmt, sql, user, mutating);
  }

  if (!mutating) {
    // Read-only statements run concurrently under the shared lock.
    std::shared_lock<std::shared_mutex> lock(engine_mu_);
    Executor executor(MakeContext(), user);
    return executor.Execute(stmt);
  }

  // Autocommit: the statement is its own transaction — executed under
  // the exclusive lock with rollback protection, journaled on success.
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  if (dur_ && !dur_->wal) {
    // The latch must refuse BEFORE execution: applying the statement in
    // memory and then reporting FailedPrecondition would let a retrying
    // caller stack up unjournaled in-memory effects.
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  const uint64_t clock_before = clock_.Peek();
  undo_.Begin();
  Executor executor(MakeContext(), user);
  auto result = executor.Execute(stmt);
  if (!result.ok()) {
    // Mid-statement failure: compensate every partial effect, newest
    // first, then restore the clock so the failed attempt is invisible.
    undo_.RollbackAll();
    clock_.Reset(clock_before);
    return result.status();
  }
  undo_.Stop();
  if (dur_) {
    BDBMS_RETURN_IF_ERROR(LogCommitted(sql, user, clock_before));
  }
  return result;
}

Result<QueryResult> Database::BeginTxn(const void* token) {
  if (txn_owner_.load(std::memory_order_acquire) == token) {
    return Status::FailedPrecondition("transaction already in progress");
  }
  // Blocks until every reader and any other session's transaction has
  // drained: one writer at a time, and it sees no interleaved state.
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  if (dur_ && !dur_->wal) {
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  txn_ = std::make_unique<Txn>();
  txn_->lock = std::move(lock);
  txn_->clock_at_begin = clock_.Peek();
  undo_.Begin();
  txn_owner_.store(token, std::memory_order_release);
  QueryResult result;
  result.message = "BEGIN";
  return result;
}

Result<QueryResult> Database::CommitTxn(const void* token) {
  if (txn_owner_.load(std::memory_order_acquire) != token) {
    return Status::FailedPrecondition("no transaction in progress");
  }
  const size_t statements = txn_->pending.size();
  if (dur_ && !txn_->pending.empty()) {
    Status logged = LogTxnCommitted();
    if (!logged.ok()) {
      // The journal rejected the transaction, so it must not commit in
      // memory either: unwind everything and report the failure.
      undo_.RollbackAll();
      clock_.Reset(txn_->clock_at_begin);
      EndTxn();
      return logged;
    }
  }
  undo_.Stop();
  EndTxn();
  QueryResult result;
  result.message = "COMMIT (" + std::to_string(statements) +
                   (statements == 1 ? " statement)" : " statements)");
  return result;
}

Result<QueryResult> Database::RollbackTxn(const void* token) {
  if (txn_owner_.load(std::memory_order_acquire) != token) {
    return Status::FailedPrecondition("no transaction in progress");
  }
  undo_.RollbackAll();
  clock_.Reset(txn_->clock_at_begin);
  EndTxn();
  QueryResult result;
  result.message = "ROLLBACK";
  return result;
}

void Database::EndTxn() {
  txn_owner_.store(nullptr, std::memory_order_release);
  std::unique_ptr<Txn> finished = std::move(txn_);
  // finished->lock releases the engine on destruction, after the owner
  // slot is already clear.
}

Result<QueryResult> Database::ExecuteInTxn(const Statement& stmt,
                                           std::string_view sql,
                                           const std::string& user,
                                           bool mutating) {
  if (mutating && dur_ && !dur_->wal) {
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  const uint64_t clock_before = clock_.Peek();
  const UndoLog::Mark mark = undo_.MarkPoint();
  Executor executor(MakeContext(), user);
  auto result = executor.Execute(stmt);
  if (!result.ok()) {
    // Statement-level savepoint: undo this statement's effects only; the
    // transaction stays open.
    undo_.RollbackTo(mark);
    clock_.Reset(clock_before);
    return result.status();
  }
  if (mutating && dur_) {
    txn_->pending.push_back({user, std::string(sql), clock_before});
  }
  return result;
}

Status Database::LogCommitted(std::string_view sql, const std::string& user,
                              uint64_t clock_before) {
  if (!dur_->wal) {
    // Unreachable via Execute (the latch refuses before execution);
    // kept as defense for future direct callers.
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  WalRecord rec;
  rec.lsn = dur_->last_lsn + 1;
  rec.clock = clock_before;
  rec.user = user;
  rec.sql = std::string(sql);
  Status appended = dur_->wal->Append(rec);
  if (!appended.ok()) {
    // The log may now end in a torn record. Latch the writer dead: a
    // later commit appended after torn bytes would be fsync-acked yet
    // silently discarded by recovery (the scan stops at the tear).
    TearDownWal();
    return appended;
  }
  dur_->last_lsn = rec.lsn;
  uint64_t interval = dur_->options.group_commit_interval;
  if (interval == 0) interval = 1;
  if (dur_->wal->unsynced() >= interval) {
    Status synced = dur_->wal->Sync();
    if (!synced.ok()) {
      // After a failed fsync the kernel may have dropped the dirty
      // pages; nothing appended afterwards could be trusted either.
      TearDownWal();
      return synced;
    }
  }
  ++dur_->statements_since_checkpoint;
  if (dur_->options.checkpoint_interval > 0 &&
      dur_->statements_since_checkpoint >= dur_->options.checkpoint_interval) {
    // The statement IS durably committed at this point; a failed
    // auto-checkpoint must not report it as failed (a retrying caller
    // would double-apply it). The log is still intact, so durability is
    // unaffected — record the failure and retry at the next statement.
    // (If the failure tore the writer down, the latch above reports it
    // on the next commit.)
    Status ckpt = CheckpointLocked();
    if (!ckpt.ok()) {
      ++dur_->checkpoint_failures;
    }
  }
  return Status::Ok();
}

Status Database::LogTxnCommitted() {
  if (!dur_->wal) {
    return Status::FailedPrecondition(
        "durable store is unusable after a write failure; reopen");
  }
  uint64_t lsn = dur_->last_lsn;
  auto append = [&](WalRecordKind kind, uint64_t clk, const std::string& user,
                    const std::string& sql) -> Status {
    WalRecord rec;
    rec.lsn = ++lsn;
    rec.clock = clk;
    rec.kind = kind;
    rec.user = user;
    rec.sql = sql;
    Status appended = dur_->wal->Append(rec);
    if (!appended.ok()) {
      // Same latch discipline as LogCommitted. A partially appended
      // group is harmless on its own — recovery discards any begin
      // marker without a commit marker — but nothing appended after the
      // tear could be trusted.
      TearDownWal();
    }
    return appended;
  };
  BDBMS_RETURN_IF_ERROR(
      append(WalRecordKind::kTxnBegin, txn_->clock_at_begin, "", ""));
  for (const PendingStatement& p : txn_->pending) {
    BDBMS_RETURN_IF_ERROR(
        append(WalRecordKind::kStatement, p.clock_before, p.user, p.sql));
  }
  BDBMS_RETURN_IF_ERROR(
      append(WalRecordKind::kTxnCommit, clock_.Peek(), "", ""));
  // One fsync covers the whole group: the transaction is durable exactly
  // when its commit marker is. group_commit_interval batches autocommit
  // statements, never transactions.
  Status synced = dur_->wal->Sync();
  if (!synced.ok()) {
    TearDownWal();
    return synced;
  }
  dur_->last_lsn = lsn;
  dur_->statements_since_checkpoint += txn_->pending.size();
  if (dur_->options.checkpoint_interval > 0 &&
      dur_->statements_since_checkpoint >= dur_->options.checkpoint_interval) {
    Status ckpt = CheckpointLocked();
    if (!ckpt.ok()) {
      ++dur_->checkpoint_failures;
    }
  }
  return Status::Ok();
}

void Database::TearDownWal() {
  if (!dur_ || !dur_->wal) return;
  // Fold the dying writer's counters into the running totals so
  // durability_stats() never goes backwards after a write failure.
  dur_->wal_bytes_total += dur_->wal->bytes_appended();
  dur_->wal_syncs_total += dur_->wal->syncs();
  dur_->wal.reset();
}

Status Database::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  return CheckpointLocked();
}

Status Database::CheckpointLocked() {
  if (!dur_) {
    return Status::FailedPrecondition("not a durable database");
  }
  if (!dur_->wal) {
    return Status::FailedPrecondition(
        "durable store is unusable after a failed checkpoint; reopen");
  }
  // Commit everything the snapshot will claim to cover. A failed fsync
  // poisons the log the same way it does in LogCommitted — the kernel
  // may have dropped the dirty pages — so the writer must latch dead
  // rather than let later appends be acked over a hole.
  Status synced = dur_->wal->Sync();
  if (!synced.ok()) {
    TearDownWal();
    return synced;
  }
  BDBMS_ASSIGN_OR_RETURN(std::string payload,
                         SerializeSnapshot(dur_->last_lsn));
  BDBMS_RETURN_IF_ERROR(WriteCheckpointFile(dur_->env, dur_->dir, payload));
  // The rename above is the commit point; only now is it safe to drop the
  // log. A crash in between leaves records with lsn <= the checkpoint's,
  // which recovery skips by lsn.
  dur_->wal_bytes_total += dur_->wal->bytes_appended();
  dur_->wal_syncs_total += dur_->wal->syncs();
  dur_->wal.reset();
  BDBMS_RETURN_IF_ERROR(dur_->env->TruncateFile(dur_->WalPath(), 0));
  BDBMS_ASSIGN_OR_RETURN(dur_->wal,
                         WalWriter::Open(dur_->env, dur_->WalPath()));
  dur_->statements_since_checkpoint = 0;
  ++dur_->checkpoints_taken;
  return Status::Ok();
}

Status Database::Close() {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  if (!dur_) return Status::Ok();
  Status s = Status::Ok();
  if (dur_->wal) {
    s = dur_->wal->Sync();
    TearDownWal();
  }
  // The store stays latched (dur_ alive, writer gone): a mutation after
  // Close must refuse rather than silently run memory-only with no
  // journaling. Only the dir lock is released, so the directory can be
  // reopened — including after a failed sync, where reopening is how
  // the caller recovers (the torn tail is trimmed).
  dur_->lock.reset();
  return s;
}

DurabilityStats Database::durability_stats() const {
  DurabilityStats stats;
  if (!dur_) return stats;
  stats.last_lsn = dur_->last_lsn;
  stats.replayed_on_open = dur_->replayed_on_open;
  stats.checkpoints_taken = dur_->checkpoints_taken;
  stats.checkpoint_failures = dur_->checkpoint_failures;
  stats.wal_bytes_appended =
      dur_->wal_bytes_total + (dur_->wal ? dur_->wal->bytes_appended() : 0);
  stats.wal_syncs =
      dur_->wal_syncs_total + (dur_->wal ? dur_->wal->syncs() : 0);
  stats.statements_since_checkpoint = dur_->statements_since_checkpoint;
  return stats;
}

Status Database::ReplayRecord(const WalRecord& rec) {
  auto parsed = ParseStatement(rec.sql);
  if (!parsed.ok()) {
    return Status::Corruption("WAL replay: lsn " + std::to_string(rec.lsn) +
                              " does not parse: " + parsed.status().message());
  }
  // Restore the exact clock value the statement originally saw, so every
  // timestamp/id handed out during replay matches the original run.
  clock_.Reset(rec.clock);
  Executor executor(MakeContext(), rec.user);
  auto result = executor.Execute(*parsed);
  if (!result.ok()) {
    return Status::Corruption(
        "WAL replay diverged at lsn " + std::to_string(rec.lsn) + " (" +
        rec.sql + "): " + result.status().message() +
        " — if the statement is CREATE DEPENDENCY, the procedure registry "
        "must be re-populated via DurabilityOptions::bootstrap");
  }
  return Status::Ok();
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 DurabilityOptions options) {
  WalEnv* env = options.env ? options.env : WalEnv::Default();
  BDBMS_RETURN_IF_ERROR(env->CreateDir(dir));
  // Exclusive dir lock for the Database's lifetime: a second simultaneous
  // open would interleave O_APPEND frames into wal.log and corrupt
  // acknowledged commits. flock-based, so a crashed holder self-clears.
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<DirLock> lock, env->LockDir(dir));

  auto db = std::unique_ptr<Database>(new Database());
  if (options.bootstrap) {
    BDBMS_RETURN_IF_ERROR(options.bootstrap(*db));
  }

  const std::string wal_path = dir + "/" + kWalFileName;
  const std::string ckpt_path = dir + "/" + kCheckpointFileName;
  const std::string tmp_path = dir + "/" + kCheckpointTmpFileName;

  // A leftover .tmp is a checkpoint that never reached its rename commit
  // point: the previous checkpoint + full log are authoritative.
  if (env->FileExists(tmp_path)) {
    BDBMS_RETURN_IF_ERROR(env->RemoveFile(tmp_path));
  }

  uint64_t last_lsn = 0;
  if (env->FileExists(ckpt_path)) {
    BDBMS_ASSIGN_OR_RETURN(std::string payload, ReadCheckpointFile(dir));
    BDBMS_RETURN_IF_ERROR(db->LoadSnapshot(payload, &last_lsn));
    // Snapshot-loaded tables must record compensations like freshly
    // created ones, or transactions after reopen could not roll back.
    for (auto& [name, table] : db->tables_) {
      table->set_undo_log(&db->undo_);
    }
  }

  uint64_t replayed = 0;
  if (env->FileExists(wal_path)) {
    BDBMS_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(wal_path));
    BDBMS_ASSIGN_OR_RETURN(WalScan scan, ScanWal(data));
    bool dangling = false;
    uint64_t truncate_at = 0;
    const size_t n = scan.records.size();
    size_t i = 0;
    while (i < n) {
      const WalRecord& rec = scan.records[i];
      if (rec.kind == WalRecordKind::kStatement) {
        if (rec.lsn > last_lsn) {  // else already in the checkpoint
          BDBMS_RETURN_IF_ERROR(db->ReplayRecord(rec));
          last_lsn = rec.lsn;
          ++replayed;
        }
        ++i;
        continue;
      }
      if (rec.kind == WalRecordKind::kTxnCommit) {
        return Status::Corruption(
            "WAL: commit marker without an open transaction at lsn " +
            std::to_string(rec.lsn));
      }
      // kTxnBegin: the group counts only if its commit marker made it
      // into the valid prefix. A dangling group is the expected shape of
      // a crash mid-commit — discard it, and everything after it, by
      // truncating at the begin marker's byte offset (later appends must
      // extend the last record recovery acknowledged).
      size_t end = i + 1;
      while (end < n && scan.records[end].kind == WalRecordKind::kStatement) {
        ++end;
      }
      if (end == n || scan.records[end].kind != WalRecordKind::kTxnCommit) {
        dangling = true;
        truncate_at = scan.record_offsets[i];
        break;
      }
      for (size_t k = i + 1; k < end; ++k) {
        const WalRecord& member = scan.records[k];
        if (member.lsn <= last_lsn) continue;
        BDBMS_RETURN_IF_ERROR(db->ReplayRecord(member));
        ++replayed;
      }
      last_lsn = std::max(last_lsn, scan.records[end].lsn);
      i = end + 1;
    }
    if (dangling) {
      BDBMS_RETURN_IF_ERROR(env->TruncateFile(wal_path, truncate_at));
    } else if (scan.tail_discarded) {
      // Cut the torn/corrupt tail so future appends extend valid data.
      BDBMS_RETURN_IF_ERROR(env->TruncateFile(wal_path, scan.valid_bytes));
    }
  }

  auto dur = std::make_unique<Durable>();
  dur->dir = dir;
  dur->options = std::move(options);
  dur->env = env;
  dur->lock = std::move(lock);
  dur->last_lsn = last_lsn;
  dur->replayed_on_open = replayed;
  const bool wal_existed = env->FileExists(wal_path);
  BDBMS_ASSIGN_OR_RETURN(dur->wal, WalWriter::Open(env, wal_path));
  if (!wal_existed) {
    // The wal.log dirent itself must be durable before any fsync-acked
    // commit relies on it: file data survives a power cut only if the
    // directory entry does too (the LevelDB/SQLite create-then-sync-dir
    // pattern).
    BDBMS_RETURN_IF_ERROR(env->SyncDir(dir));
  }
  db->dur_ = std::move(dur);
  return db;
}

}  // namespace bdbms
