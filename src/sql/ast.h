#ifndef BDBMS_SQL_AST_H_
#define BDBMS_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"
#include "dep/rule.h"

namespace bdbms {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,    // 42, 'text', NULL
  kColumnRef,  // col or tbl.col
  kBinary,     // comparisons, AND/OR, arithmetic, LIKE, MATCHES
  kUnary,      // NOT, -, IS NULL, IS NOT NULL
  kAggregate,  // COUNT/SUM/AVG/MIN/MAX
  kAnnField,   // VALUE / CATEGORY / AUTHOR inside AWHERE/AHAVING/FILTER
  kFunction,   // ALIGN(seq, 'ACGT'), DISTANCE(seq, 'ACGT')
};

enum class BinOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv,
  kLike,
  kMatches,  // full-string regular-expression match
};

enum class UnOp { kNot, kNeg, kIsNull, kIsNotNull };

enum class AggFn { kCountStar, kCount, kSum, kAvg, kMin, kMax };

// Two-argument sequence scalar functions (docs/sql-dialect.md):
//   ALIGN(a, b)    — Smith–Waterman local alignment score (INT)
//   DISTANCE(a, b) — Levenshtein edit distance (INT)
enum class ScalarFn { kAlign, kDistance };

// Annotation attributes addressable in annotation conditions:
//   VALUE     — the annotation's XML body text
//   CATEGORY  — the annotation table it came from
//   AUTHOR    — who added it
enum class AnnField { kValue, kCategory, kAuthor };

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;                   // kLiteral
  std::string qualifier;           // kColumnRef: optional table/alias
  std::string column;              // kColumnRef
  BinOp bin_op = BinOp::kEq;       // kBinary
  UnOp un_op = UnOp::kNot;         // kUnary
  AggFn agg_fn = AggFn::kCount;    // kAggregate
  AnnField ann_field = AnnField::kValue;  // kAnnField
  ScalarFn scalar_fn = ScalarFn::kAlign;  // kFunction

  ExprPtr left;   // kBinary / kFunction first argument
  ExprPtr right;  // kBinary / kFunction second argument
  ExprPtr child;  // kUnary / kAggregate argument (null for COUNT(*))

  bool ContainsAggregate() const {
    if (kind == ExprKind::kAggregate) return true;
    if (left && left->ContainsAggregate()) return true;
    if (right && right->ContainsAggregate()) return true;
    if (child && child->ContainsAggregate()) return true;
    return false;
  }
};

// ---------------------------------------------------------------------------
// SELECT (A-SQL Figure 7)
// ---------------------------------------------------------------------------

// One projected item: expression, optional alias, optional PROMOTE list —
// columns whose annotations are copied onto this output column.
struct SelectItem {
  ExprPtr expr;
  std::string alias;
  std::vector<std::string> promote_columns;
};

// FROM entry: table [alias] [ANNOTATION(a, b, ...)] — the ANNOTATION
// operator selects which annotation tables participate; ANNOTATION(ALL)
// propagates every category.
struct TableRef {
  std::string table;
  std::string alias;
  std::vector<std::string> annotation_tables;
  bool all_annotations = false;
};

enum class SetOpKind { kNone, kUnion, kIntersect, kExcept };

// One ORDER BY key: a bare (possibly qualified) column name, or — for
// expression keys like DISTANCE(seq, 'ACGT') — the expression itself.
struct OrderKey {
  std::string column;  // nonempty iff the key is a bare column reference
  ExprPtr expr;        // set iff the key is an expression
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  bool star = false;               // SELECT *
  std::vector<SelectItem> items;   // empty iff star
  std::vector<TableRef> from;
  ExprPtr where;
  ExprPtr awhere;                  // annotation condition on input tuples
  std::vector<std::string> group_by;
  ExprPtr having;
  ExprPtr ahaving;                 // annotation condition on groups
  ExprPtr filter;                  // annotation filter (tuples all pass)
  std::vector<OrderKey> order_by;
  std::optional<uint64_t> limit;
  SetOpKind set_op = SetOpKind::kNone;
  std::unique_ptr<SelectStmt> set_rhs;
};

// ---------------------------------------------------------------------------
// DML / DDL
// ---------------------------------------------------------------------------

struct CreateTableStmt {
  TableSchema schema;
};
struct DropTableStmt {
  std::string table;
};
struct InsertStmt {
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;
};
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};
struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

// CREATE INDEX name ON table (col [, col ...]) — registers a B+-tree
// secondary index (composite keys in column-list order) the planner may
// choose for equality/range/LIKE-prefix predicates.
// CREATE SEQUENCE INDEX name ON table (col) [USING SPGIST] — registers an
// SP-GiST trie over one sequence/text column for prefix/pattern probes.
struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
  bool spgist = false;
};
// DROP INDEX name ON table.
struct DropIndexStmt {
  std::string index;
  std::string table;
};

struct Statement;  // forward; ExplainStmt and AddAnnotationStmt nest one

// EXPLAIN <statement> — prints the physical plan without executing it.
struct ExplainStmt {
  std::unique_ptr<Statement> target;
};

// ANALYZE [table] — collects row-count / per-column NDV, min/max and
// histogram statistics into the catalog for the cost-based planner. With
// no table, every table in the catalog is analyzed.
struct AnalyzeStmt {
  std::string table;  // empty = all tables
};

// CHECKPOINT — snapshots the full engine state to the durable store and
// truncates the statement WAL (docs/durability.md). A no-op on in-memory
// databases, so durable and in-memory runs of one script stay comparable.
struct CheckpointStmt {};

// BEGIN [TRANSACTION] / COMMIT / ROLLBACK — explicit multi-statement
// transaction control (docs/transactions.md). Handled by the Database
// facade, not the executor: transaction state lives above statement
// execution.
struct TxnStmt {
  enum class Kind { kBegin, kCommit, kRollback };
  Kind kind = Kind::kBegin;
};

// ---------------------------------------------------------------------------
// A-SQL annotation commands (Figures 4 and 6)
// ---------------------------------------------------------------------------

struct CreateAnnTableStmt {
  std::string table;
  std::string ann_table;
  bool provenance = false;  // CREATE ANNOTATION TABLE ... AS PROVENANCE
};
struct DropAnnTableStmt {
  std::string table;
  std::string ann_table;
};

// ADD ANNOTATION TO t.a1 [, t.a2 ...] VALUE '<xml>' ON <statement>.
// The nested statement may be a SELECT (annotate existing data) or an
// INSERT/UPDATE/DELETE (annotate the data the operation touches).
struct AddAnnotationStmt {
  std::vector<std::pair<std::string, std::string>> targets;  // (table, ann)
  std::string value;  // XML body
  std::unique_ptr<Statement> on;
};

// ARCHIVE/RESTORE ANNOTATION FROM t.a1 [, ...] [BETWEEN t1 AND t2]
// ON (SELECT ...).
struct ArchiveAnnotationStmt {
  bool restore = false;
  std::vector<std::pair<std::string, std::string>> targets;
  std::optional<uint64_t> time_begin;
  std::optional<uint64_t> time_end;
  std::unique_ptr<SelectStmt> on;
};

// ---------------------------------------------------------------------------
// Authorization (classic + Figure 11)
// ---------------------------------------------------------------------------

struct GrantStmt {
  bool revoke = false;
  std::string privilege;  // SELECT | INSERT | UPDATE | DELETE
  std::string table;
  std::string principal;
};
struct CreateUserStmt {
  std::string name;
  bool is_group = false;
};
struct AddUserToGroupStmt {
  std::string user;
  std::string group;
};
struct StartApprovalStmt {
  std::string table;
  std::vector<std::string> columns;
  std::string approver;
};
struct StopApprovalStmt {
  std::string table;
  std::vector<std::string> columns;
};
struct ApproveStmt {
  bool disapprove = false;
  uint64_t op_id = 0;
};
struct ShowPendingStmt {
  std::string table;  // empty = all tables
};

// ---------------------------------------------------------------------------
// Dependency DDL (paper §5)
// ---------------------------------------------------------------------------

// CREATE DEPENDENCY name FROM T.c1 [, T.c2 ...] TO U.d USING proc
//   [JOIN ON T.k = U.k]
struct CreateDependencyStmt {
  DependencyRule rule;
};
struct DropDependencyStmt {
  std::string name;
};

// ---------------------------------------------------------------------------

using StatementVariant =
    std::variant<SelectStmt, CreateTableStmt, DropTableStmt, InsertStmt,
                 UpdateStmt, DeleteStmt, CreateIndexStmt, DropIndexStmt,
                 ExplainStmt, AnalyzeStmt, CheckpointStmt, TxnStmt,
                 CreateAnnTableStmt,
                 DropAnnTableStmt, AddAnnotationStmt, ArchiveAnnotationStmt,
                 GrantStmt, CreateUserStmt, AddUserToGroupStmt,
                 StartApprovalStmt, StopApprovalStmt, ApproveStmt,
                 ShowPendingStmt, CreateDependencyStmt, DropDependencyStmt>;

struct Statement {
  StatementVariant node;
};

// True for statements whose successful execution changes engine state —
// the set the durable Database journals in its write-ahead log. SELECT,
// EXPLAIN and SHOW PENDING only read; CHECKPOINT manages the log itself
// and must never be replayed from it; BEGIN/COMMIT/ROLLBACK are journaled
// as their own framing records, not as statements.
inline bool StatementMutatesState(const Statement& stmt) {
  return !(std::holds_alternative<SelectStmt>(stmt.node) ||
           std::holds_alternative<ExplainStmt>(stmt.node) ||
           std::holds_alternative<ShowPendingStmt>(stmt.node) ||
           std::holds_alternative<CheckpointStmt>(stmt.node) ||
           std::holds_alternative<TxnStmt>(stmt.node));
}

}  // namespace bdbms

#endif  // BDBMS_SQL_AST_H_
