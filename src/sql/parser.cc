#include "sql/parser.h"

#include <algorithm>

#include "sql/lexer.h"

namespace bdbms {

namespace {

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), ::toupper);
  return s;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseTopLevel() {
    BDBMS_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    if (Cur().IsSymbol(";")) Advance();
    if (Cur().type != TokenType::kEnd) {
      return Err("unexpected trailing input '" + Cur().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    return tokens_[std::min(pos_ + n, tokens_.size() - 1)];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("parse error at byte " +
                                   std::to_string(Cur().position) + ": " + msg);
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!Cur().IsKeyword(kw)) {
      return Err("expected " + std::string(kw) + ", got '" + Cur().text + "'");
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectSymbol(std::string_view s) {
    if (!Cur().IsSymbol(s)) {
      return Err("expected '" + std::string(s) + "', got '" + Cur().text + "'");
    }
    Advance();
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier() {
    if (Cur().type != TokenType::kIdentifier) {
      return Err("expected identifier, got '" + Cur().text + "'");
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  Result<uint64_t> ExpectInteger() {
    if (Cur().type != TokenType::kInteger) {
      return Err("expected integer, got '" + Cur().text + "'");
    }
    uint64_t v = std::stoull(Cur().text);
    Advance();
    return v;
  }

  Result<std::string> ExpectString() {
    if (Cur().type != TokenType::kString) {
      return Err("expected string literal, got '" + Cur().text + "'");
    }
    std::string s = Cur().text;
    Advance();
    return s;
  }

  // ---- statements ---------------------------------------------------------

  Result<Statement> ParseStatementInner() {
    if (Cur().IsKeyword("SELECT")) {
      BDBMS_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
      return Statement{std::move(sel)};
    }
    if (Cur().IsKeyword("CREATE")) return ParseCreate();
    if (Cur().IsKeyword("DROP")) return ParseDrop();
    if (Cur().IsKeyword("INSERT")) {
      BDBMS_ASSIGN_OR_RETURN(InsertStmt ins, ParseInsert());
      return Statement{std::move(ins)};
    }
    if (Cur().IsKeyword("UPDATE")) {
      BDBMS_ASSIGN_OR_RETURN(UpdateStmt upd, ParseUpdate());
      return Statement{std::move(upd)};
    }
    if (Cur().IsKeyword("DELETE")) {
      BDBMS_ASSIGN_OR_RETURN(DeleteStmt del, ParseDelete());
      return Statement{std::move(del)};
    }
    if (Cur().IsKeyword("ADD")) return ParseAdd();
    if (Cur().IsKeyword("ARCHIVE") || Cur().IsKeyword("RESTORE")) {
      return ParseArchiveRestore();
    }
    if (Cur().IsKeyword("GRANT") || Cur().IsKeyword("REVOKE")) {
      return ParseGrantRevoke();
    }
    if (Cur().IsKeyword("START")) return ParseStartApproval();
    if (Cur().IsKeyword("STOP")) return ParseStopApproval();
    if (Cur().IsKeyword("APPROVE") || Cur().IsKeyword("DISAPPROVE")) {
      return ParseApprove();
    }
    if (Cur().IsKeyword("SHOW")) return ParseShowPending();
    if (Cur().IsKeyword("EXPLAIN")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(Statement inner, ParseStatementInner());
      ExplainStmt stmt;
      stmt.target = std::make_unique<Statement>(std::move(inner));
      return Statement{std::move(stmt)};
    }
    if (Cur().IsKeyword("ANALYZE")) {
      Advance();
      AnalyzeStmt stmt;
      if (Cur().type == TokenType::kIdentifier) {
        stmt.table = Cur().text;
        Advance();
      }
      return Statement{std::move(stmt)};
    }
    if (Cur().IsKeyword("CHECKPOINT")) {
      Advance();
      return Statement{CheckpointStmt{}};
    }
    if (Cur().IsKeyword("BEGIN")) {
      Advance();
      if (Cur().IsKeyword("TRANSACTION")) Advance();
      return Statement{TxnStmt{TxnStmt::Kind::kBegin}};
    }
    if (Cur().IsKeyword("COMMIT")) {
      Advance();
      if (Cur().IsKeyword("TRANSACTION")) Advance();
      return Statement{TxnStmt{TxnStmt::Kind::kCommit}};
    }
    if (Cur().IsKeyword("ROLLBACK")) {
      Advance();
      if (Cur().IsKeyword("TRANSACTION")) Advance();
      return Statement{TxnStmt{TxnStmt::Kind::kRollback}};
    }
    return Err("expected a statement, got '" + Cur().text + "'");
  }

  Result<Statement> ParseCreate() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    if (Cur().IsKeyword("TABLE")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      BDBMS_RETURN_IF_ERROR(ExpectSymbol("("));
      TableSchema schema(name);
      for (;;) {
        BDBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        BDBMS_ASSIGN_OR_RETURN(DataType type, ParseType());
        BDBMS_RETURN_IF_ERROR(schema.AddColumn(col, type));
        if (Cur().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return Statement{CreateTableStmt{std::move(schema)}};
    }
    if (Cur().IsKeyword("ANNOTATION")) {
      Advance();
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
      BDBMS_ASSIGN_OR_RETURN(std::string ann, ExpectIdentifier());
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
      BDBMS_ASSIGN_OR_RETURN(std::string table, ExpectIdentifier());
      bool provenance = false;
      if (Cur().IsKeyword("AS")) {
        Advance();
        BDBMS_RETURN_IF_ERROR(ExpectKeyword("PROVENANCE"));
        provenance = true;
      }
      return Statement{CreateAnnTableStmt{table, ann, provenance}};
    }
    if (Cur().IsKeyword("USER")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      return Statement{CreateUserStmt{name, /*is_group=*/false}};
    }
    if (Cur().IsKeyword("GROUP")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      return Statement{CreateUserStmt{name, /*is_group=*/true}};
    }
    bool sequence_index = false;
    if (Cur().IsKeyword("SEQUENCE")) {
      Advance();
      if (!Cur().IsKeyword("INDEX")) return Err("expected INDEX");
      sequence_index = true;
    }
    if (Cur().IsKeyword("INDEX")) {
      Advance();
      CreateIndexStmt stmt;
      stmt.spgist = sequence_index;
      BDBMS_ASSIGN_OR_RETURN(stmt.index, ExpectIdentifier());
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
      BDBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
      // Column list in parentheses (standard) or one bare column.
      bool parens = Cur().IsSymbol("(");
      if (parens) Advance();
      for (;;) {
        BDBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.columns.push_back(std::move(col));
        if (parens && Cur().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (parens) BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
      // Optional access-method clause; SPGIST is implied by (and the only
      // method of) CREATE SEQUENCE INDEX.
      if (Cur().IsKeyword("USING")) {
        Advance();
        if (!Cur().IsKeyword("SPGIST")) {
          return Err("expected SPGIST after USING");
        }
        Advance();
        if (!sequence_index) {
          return Err("USING SPGIST requires CREATE SEQUENCE INDEX");
        }
      }
      return Statement{std::move(stmt)};
    }
    if (Cur().IsKeyword("DEPENDENCY")) return ParseCreateDependency();
    return Err("expected TABLE, ANNOTATION, INDEX, USER, GROUP or DEPENDENCY");
  }

  Result<DataType> ParseType() {
    if (Cur().IsKeyword("INT") || Cur().IsKeyword("INTEGER")) {
      Advance();
      return DataType::kInt;
    }
    if (Cur().IsKeyword("DOUBLE")) {
      Advance();
      return DataType::kDouble;
    }
    if (Cur().IsKeyword("TEXT")) {
      Advance();
      return DataType::kText;
    }
    if (Cur().IsKeyword("SEQUENCE")) {
      Advance();
      return DataType::kSequence;
    }
    return Err("expected a type (INT, DOUBLE, TEXT, SEQUENCE)");
  }

  // CREATE DEPENDENCY name FROM T.c [, T.c]* TO U.d USING proc
  //   [JOIN ON T.k = U.k]
  Result<Statement> ParseCreateDependency() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("DEPENDENCY"));
    DependencyRule rule;
    BDBMS_ASSIGN_OR_RETURN(rule.name, ExpectIdentifier());
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    for (;;) {
      BDBMS_ASSIGN_OR_RETURN(ColumnRef ref, ParseQualifiedColumn());
      rule.sources.push_back(std::move(ref));
      if (Cur().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("TO"));
    BDBMS_ASSIGN_OR_RETURN(rule.target, ParseQualifiedColumn());
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("USING"));
    if (Cur().type == TokenType::kString ||
        Cur().type == TokenType::kIdentifier) {
      rule.procedure = Cur().text;
      Advance();
    } else {
      return Err("expected procedure name after USING");
    }
    if (Cur().IsKeyword("JOIN")) {
      Advance();
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
      BDBMS_ASSIGN_OR_RETURN(ColumnRef lhs, ParseQualifiedColumn());
      BDBMS_RETURN_IF_ERROR(ExpectSymbol("="));
      BDBMS_ASSIGN_OR_RETURN(ColumnRef rhs, ParseQualifiedColumn());
      // Accept either order; normalize to source = target.
      KeyJoin join;
      if (!rule.sources.empty() && lhs.table == rule.sources[0].table) {
        join.source_key_column = lhs.column;
        join.target_key_column = rhs.column;
      } else {
        join.source_key_column = rhs.column;
        join.target_key_column = lhs.column;
      }
      rule.join = join;
    }
    return Statement{CreateDependencyStmt{std::move(rule)}};
  }

  Result<ColumnRef> ParseQualifiedColumn() {
    BDBMS_ASSIGN_OR_RETURN(std::string table, ExpectIdentifier());
    BDBMS_RETURN_IF_ERROR(ExpectSymbol("."));
    BDBMS_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
    return ColumnRef{table, column};
  }

  Result<Statement> ParseDrop() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    if (Cur().IsKeyword("TABLE")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      return Statement{DropTableStmt{name}};
    }
    if (Cur().IsKeyword("ANNOTATION")) {
      Advance();
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
      BDBMS_ASSIGN_OR_RETURN(std::string ann, ExpectIdentifier());
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
      BDBMS_ASSIGN_OR_RETURN(std::string table, ExpectIdentifier());
      return Statement{DropAnnTableStmt{table, ann}};
    }
    if (Cur().IsKeyword("INDEX")) {
      Advance();
      DropIndexStmt stmt;
      BDBMS_ASSIGN_OR_RETURN(stmt.index, ExpectIdentifier());
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
      BDBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
      return Statement{std::move(stmt)};
    }
    if (Cur().IsKeyword("DEPENDENCY")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      return Statement{DropDependencyStmt{name}};
    }
    return Err("expected TABLE, ANNOTATION, INDEX or DEPENDENCY after DROP");
  }

  Result<InsertStmt> ParseInsert() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    BDBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    for (;;) {
      BDBMS_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      for (;;) {
        BDBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (Cur().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
      if (Cur().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    return stmt;
  }

  Result<UpdateStmt> ParseUpdate() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    UpdateStmt stmt;
    BDBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("SET"));
    for (;;) {
      BDBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      BDBMS_RETURN_IF_ERROR(ExpectSymbol("="));
      BDBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(e));
      if (Cur().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (Cur().IsKeyword("WHERE")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  Result<DeleteStmt> ParseDelete() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    BDBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (Cur().IsKeyword("WHERE")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return stmt;
  }

  // ADD ANNOTATION ... | ADD USER u TO GROUP g
  Result<Statement> ParseAdd() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("ADD"));
    if (Cur().IsKeyword("USER")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(std::string user, ExpectIdentifier());
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("TO"));
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("GROUP"));
      BDBMS_ASSIGN_OR_RETURN(std::string group, ExpectIdentifier());
      return Statement{AddUserToGroupStmt{user, group}};
    }
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("ANNOTATION"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("TO"));
    AddAnnotationStmt stmt;
    BDBMS_ASSIGN_OR_RETURN(stmt.targets, ParseAnnTargets());
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("VALUE"));
    BDBMS_ASSIGN_OR_RETURN(stmt.value, ExpectString());
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
    bool parens = Cur().IsSymbol("(");
    if (parens) Advance();
    BDBMS_ASSIGN_OR_RETURN(Statement inner, ParseStatementInner());
    if (parens) BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.on = std::make_unique<Statement>(std::move(inner));
    return Statement{std::move(stmt)};
  }

  Result<std::vector<std::pair<std::string, std::string>>> ParseAnnTargets() {
    std::vector<std::pair<std::string, std::string>> targets;
    for (;;) {
      BDBMS_ASSIGN_OR_RETURN(std::string table, ExpectIdentifier());
      BDBMS_RETURN_IF_ERROR(ExpectSymbol("."));
      BDBMS_ASSIGN_OR_RETURN(std::string ann, ExpectIdentifier());
      targets.emplace_back(table, ann);
      if (Cur().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    return targets;
  }

  Result<Statement> ParseArchiveRestore() {
    ArchiveAnnotationStmt stmt;
    stmt.restore = Cur().IsKeyword("RESTORE");
    Advance();
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("ANNOTATION"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    BDBMS_ASSIGN_OR_RETURN(stmt.targets, ParseAnnTargets());
    if (Cur().IsKeyword("BETWEEN")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(uint64_t t1, ExpectInteger());
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("AND"));
      BDBMS_ASSIGN_OR_RETURN(uint64_t t2, ExpectInteger());
      stmt.time_begin = t1;
      stmt.time_end = t2;
    }
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
    bool parens = Cur().IsSymbol("(");
    if (parens) Advance();
    BDBMS_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
    if (parens) BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.on = std::make_unique<SelectStmt>(std::move(sel));
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseGrantRevoke() {
    GrantStmt stmt;
    stmt.revoke = Cur().IsKeyword("REVOKE");
    Advance();
    if (Cur().IsKeyword("SELECT") || Cur().IsKeyword("INSERT") ||
        Cur().IsKeyword("UPDATE") || Cur().IsKeyword("DELETE")) {
      stmt.privilege = Cur().text;
      Advance();
    } else {
      return Err("expected a privilege (SELECT/INSERT/UPDATE/DELETE)");
    }
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
    BDBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    BDBMS_RETURN_IF_ERROR(
        ExpectKeyword(stmt.revoke ? "FROM" : "TO"));
    BDBMS_ASSIGN_OR_RETURN(stmt.principal, ExpectIdentifier());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseStartApproval() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("START"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("CONTENT"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("APPROVAL"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
    StartApprovalStmt stmt;
    BDBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (Cur().IsKeyword("COLUMNS")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(stmt.columns, ParseColumnList());
    }
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("APPROVED"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("BY"));
    BDBMS_ASSIGN_OR_RETURN(stmt.approver, ExpectIdentifier());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseStopApproval() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("STOP"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("CONTENT"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("APPROVAL"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("ON"));
    StopApprovalStmt stmt;
    BDBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (Cur().IsKeyword("COLUMNS")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(stmt.columns, ParseColumnList());
    }
    return Statement{std::move(stmt)};
  }

  Result<std::vector<std::string>> ParseColumnList() {
    std::vector<std::string> cols;
    bool parens = Cur().IsSymbol("(");
    if (parens) Advance();
    for (;;) {
      BDBMS_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier());
      cols.push_back(std::move(c));
      if (Cur().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (parens) BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
    return cols;
  }

  Result<Statement> ParseApprove() {
    ApproveStmt stmt;
    stmt.disapprove = Cur().IsKeyword("DISAPPROVE");
    Advance();
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("OPERATION"));
    BDBMS_ASSIGN_OR_RETURN(stmt.op_id, ExpectInteger());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseShowPending() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("SHOW"));
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("PENDING"));
    ShowPendingStmt stmt;
    if (Cur().IsKeyword("ON")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    }
    return Statement{std::move(stmt)};
  }

  // ---- SELECT -------------------------------------------------------------

  Result<SelectStmt> ParseSelect() {
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt stmt;
    if (Cur().IsKeyword("DISTINCT")) {
      Advance();
      stmt.distinct = true;
    }
    if (Cur().IsSymbol("*")) {
      Advance();
      stmt.star = true;
    } else {
      for (;;) {
        SelectItem item;
        BDBMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Cur().IsKeyword("PROMOTE")) {
          Advance();
          BDBMS_RETURN_IF_ERROR(ExpectSymbol("("));
          for (;;) {
            BDBMS_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier());
            item.promote_columns.push_back(std::move(c));
            if (Cur().IsSymbol(",")) {
              Advance();
              continue;
            }
            break;
          }
          BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
        }
        if (Cur().IsKeyword("AS")) {
          Advance();
          BDBMS_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        }
        stmt.items.push_back(std::move(item));
        if (Cur().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    BDBMS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    for (;;) {
      BDBMS_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt.from.push_back(std::move(ref));
      if (Cur().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (Cur().IsKeyword("WHERE")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (Cur().IsKeyword("AWHERE")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(stmt.awhere, ParseExpr());
    }
    if (Cur().IsKeyword("GROUP")) {
      Advance();
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        BDBMS_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier());
        // Allow qualified group-by columns; the qualifier is dropped.
        if (Cur().IsSymbol(".")) {
          Advance();
          BDBMS_ASSIGN_OR_RETURN(c, ExpectIdentifier());
        }
        stmt.group_by.push_back(std::move(c));
        if (Cur().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (Cur().IsKeyword("HAVING")) {
        Advance();
        BDBMS_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
      }
      if (Cur().IsKeyword("AHAVING")) {
        Advance();
        BDBMS_ASSIGN_OR_RETURN(stmt.ahaving, ParseExpr());
      }
    }
    if (Cur().IsKeyword("FILTER")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(stmt.filter, ParseExpr());
    }
    if (Cur().IsKeyword("ORDER")) {
      Advance();
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        // A key is a (possibly qualified) column name or a scalar
        // expression — e.g. DISTANCE(Seq, 'ACGT'). Bare column refs
        // keep the historical behaviour (qualifier dropped).
        OrderKey key;
        BDBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        if (e->kind == ExprKind::kColumnRef) {
          key.column = std::move(e->column);
        } else {
          key.expr = std::move(e);
        }
        if (Cur().IsKeyword("DESC")) {
          key.descending = true;
          Advance();
        } else if (Cur().IsKeyword("ASC")) {
          Advance();
        }
        stmt.order_by.push_back(std::move(key));
        if (Cur().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Cur().IsKeyword("LIMIT")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(uint64_t n, ExpectInteger());
      stmt.limit = n;
    }
    if (Cur().IsKeyword("UNION") || Cur().IsKeyword("INTERSECT") ||
        Cur().IsKeyword("EXCEPT")) {
      if (Cur().IsKeyword("UNION")) stmt.set_op = SetOpKind::kUnion;
      if (Cur().IsKeyword("INTERSECT")) stmt.set_op = SetOpKind::kIntersect;
      if (Cur().IsKeyword("EXCEPT")) stmt.set_op = SetOpKind::kExcept;
      Advance();
      BDBMS_ASSIGN_OR_RETURN(SelectStmt rhs, ParseSelect());
      stmt.set_rhs = std::make_unique<SelectStmt>(std::move(rhs));
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    BDBMS_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
    if (Cur().type == TokenType::kIdentifier) {
      ref.alias = Cur().text;
      Advance();
    }
    if (Cur().IsKeyword("ANNOTATION")) {
      Advance();
      BDBMS_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Cur().IsKeyword("ALL")) {
        Advance();
        ref.all_annotations = true;
      } else {
        for (;;) {
          BDBMS_ASSIGN_OR_RETURN(std::string a, ExpectIdentifier());
          ref.annotation_tables.push_back(std::move(a));
          if (Cur().IsSymbol(",")) {
            Advance();
            continue;
          }
          break;
        }
      }
      BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    return ref;
  }

  // ---- expressions --------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    BDBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Cur().IsKeyword("OR")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->bin_op = BinOp::kOr;
      e->left = std::move(left);
      e->right = std::move(right);
      left = std::move(e);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    BDBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Cur().IsKeyword("AND")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->bin_op = BinOp::kAnd;
      e->left = std::move(left);
      e->right = std::move(right);
      left = std::move(e);
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (Cur().IsKeyword("NOT")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->un_op = UnOp::kNot;
      e->child = std::move(child);
      return e;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    BDBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    if (Cur().IsKeyword("IS")) {
      Advance();
      bool negated = false;
      if (Cur().IsKeyword("NOT")) {
        Advance();
        negated = true;
      }
      BDBMS_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->un_op = negated ? UnOp::kIsNotNull : UnOp::kIsNull;
      e->child = std::move(left);
      return e;
    }
    BinOp op;
    if (Cur().IsSymbol("=")) op = BinOp::kEq;
    else if (Cur().IsSymbol("!=")) op = BinOp::kNe;
    else if (Cur().IsSymbol("<")) op = BinOp::kLt;
    else if (Cur().IsSymbol("<=")) op = BinOp::kLe;
    else if (Cur().IsSymbol(">")) op = BinOp::kGt;
    else if (Cur().IsSymbol(">=")) op = BinOp::kGe;
    else if (Cur().IsKeyword("LIKE")) op = BinOp::kLike;
    else if (Cur().IsKeyword("MATCHES")) op = BinOp::kMatches;
    else return left;
    Advance();
    BDBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->bin_op = op;
    e->left = std::move(left);
    e->right = std::move(right);
    return e;
  }

  Result<ExprPtr> ParseAdditive() {
    BDBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (Cur().IsSymbol("+") || Cur().IsSymbol("-")) {
      BinOp op = Cur().IsSymbol("+") ? BinOp::kAdd : BinOp::kSub;
      Advance();
      BDBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->bin_op = op;
      e->left = std::move(left);
      e->right = std::move(right);
      left = std::move(e);
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    BDBMS_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Cur().IsSymbol("*") || Cur().IsSymbol("/")) {
      BinOp op = Cur().IsSymbol("*") ? BinOp::kMul : BinOp::kDiv;
      Advance();
      BDBMS_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->bin_op = op;
      e->left = std::move(left);
      e->right = std::move(right);
      left = std::move(e);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Cur().IsSymbol("-")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->un_op = UnOp::kNeg;
      e->child = std::move(child);
      return e;
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    auto e = std::make_unique<Expr>();
    // Literals.
    if (Cur().type == TokenType::kInteger) {
      e->kind = ExprKind::kLiteral;
      e->literal = Value::Int(std::stoll(Cur().text));
      Advance();
      return e;
    }
    if (Cur().type == TokenType::kFloat) {
      e->kind = ExprKind::kLiteral;
      e->literal = Value::Double(std::stod(Cur().text));
      Advance();
      return e;
    }
    if (Cur().type == TokenType::kString) {
      e->kind = ExprKind::kLiteral;
      e->literal = Value::Text(Cur().text);
      Advance();
      return e;
    }
    if (Cur().IsKeyword("NULL")) {
      e->kind = ExprKind::kLiteral;
      e->literal = Value::Null();
      Advance();
      return e;
    }
    if (Cur().IsSymbol("(")) {
      Advance();
      BDBMS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    // The annotation attribute VALUE (a keyword).
    if (Cur().IsKeyword("VALUE")) {
      e->kind = ExprKind::kAnnField;
      e->ann_field = AnnField::kValue;
      Advance();
      return e;
    }
    if (Cur().type == TokenType::kIdentifier) {
      std::string name = Cur().text;
      std::string upper = Upper(name);
      // Aggregates: NAME ( ... ).
      if (Peek().IsSymbol("(") &&
          (upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
           upper == "MIN" || upper == "MAX")) {
        Advance();  // name
        Advance();  // (
        e->kind = ExprKind::kAggregate;
        if (upper == "COUNT" && Cur().IsSymbol("*")) {
          e->agg_fn = AggFn::kCountStar;
          Advance();
        } else {
          if (upper == "COUNT") e->agg_fn = AggFn::kCount;
          if (upper == "SUM") e->agg_fn = AggFn::kSum;
          if (upper == "AVG") e->agg_fn = AggFn::kAvg;
          if (upper == "MIN") e->agg_fn = AggFn::kMin;
          if (upper == "MAX") e->agg_fn = AggFn::kMax;
          BDBMS_ASSIGN_OR_RETURN(e->child, ParseExpr());
        }
        BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
        return e;
      }
      // Sequence scalar functions: ALIGN(a, b), DISTANCE(a, b).
      if (Peek().IsSymbol("(") && (upper == "ALIGN" || upper == "DISTANCE")) {
        Advance();  // name
        Advance();  // (
        e->kind = ExprKind::kFunction;
        e->scalar_fn =
            upper == "ALIGN" ? ScalarFn::kAlign : ScalarFn::kDistance;
        BDBMS_ASSIGN_OR_RETURN(e->left, ParseExpr());
        BDBMS_RETURN_IF_ERROR(ExpectSymbol(","));
        BDBMS_ASSIGN_OR_RETURN(e->right, ParseExpr());
        BDBMS_RETURN_IF_ERROR(ExpectSymbol(")"));
        return e;
      }
      // Annotation attributes CATEGORY and AUTHOR (reserved identifiers in
      // annotation-condition position; they cannot name user columns).
      if (upper == "CATEGORY" || upper == "AUTHOR") {
        e->kind = ExprKind::kAnnField;
        e->ann_field =
            upper == "CATEGORY" ? AnnField::kCategory : AnnField::kAuthor;
        Advance();
        return e;
      }
      // Column reference: name or qualifier.name.
      Advance();
      if (Cur().IsSymbol(".")) {
        Advance();
        if (Cur().type == TokenType::kIdentifier) {
          e->kind = ExprKind::kColumnRef;
          e->qualifier = name;
          e->column = Cur().text;
          Advance();
          return e;
        }
        // qualifier.* — used by SELECT G.* ; treat as star on a qualifier.
        if (Cur().IsSymbol("*")) {
          Advance();
          e->kind = ExprKind::kColumnRef;
          e->qualifier = name;
          e->column = "*";
          return e;
        }
        return Err("expected column name after '.'");
      }
      e->kind = ExprKind::kColumnRef;
      e->column = name;
      return e;
    }
    return Err("expected an expression, got '" + Cur().text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  BDBMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseTopLevel();
}

}  // namespace bdbms
