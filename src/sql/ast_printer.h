#ifndef BDBMS_SQL_AST_PRINTER_H_
#define BDBMS_SQL_AST_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace bdbms {

// Renders an expression back to (normalized) A-SQL text — used by EXPLAIN
// to label Filter/IndexScan/aggregate nodes. Binary expressions are fully
// parenthesized, so the output is unambiguous regardless of precedence.
std::string ExprToString(const Expr& e);

}  // namespace bdbms

#endif  // BDBMS_SQL_AST_PRINTER_H_
