#include "sql/ast_printer.h"

namespace bdbms {

namespace {

std::string_view BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kLike: return "LIKE";
    case BinOp::kMatches: return "MATCHES";
  }
  return "?";
}

std::string_view AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kAvg: return "AVG";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

}  // namespace

std::string ExprToString(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal.ToString();
    case ExprKind::kColumnRef:
      return e.qualifier.empty() ? e.column : e.qualifier + "." + e.column;
    case ExprKind::kAnnField:
      switch (e.ann_field) {
        case AnnField::kValue: return "VALUE";
        case AnnField::kCategory: return "CATEGORY";
        case AnnField::kAuthor: return "AUTHOR";
      }
      return "?";
    case ExprKind::kAggregate: {
      if (e.agg_fn == AggFn::kCountStar) return "COUNT(*)";
      std::string out(AggFnName(e.agg_fn));
      out += "(";
      out += ExprToString(*e.child);
      out += ")";
      return out;
    }
    case ExprKind::kUnary: {
      std::string child = ExprToString(*e.child);
      switch (e.un_op) {
        case UnOp::kNot: return "NOT " + child;
        case UnOp::kNeg: return "-" + child;
        case UnOp::kIsNull: return child + " IS NULL";
        case UnOp::kIsNotNull: return child + " IS NOT NULL";
      }
      return "?";
    }
    case ExprKind::kBinary: {
      std::string out = "(";
      out += ExprToString(*e.left);
      out += " ";
      out += BinOpName(e.bin_op);
      out += " ";
      out += ExprToString(*e.right);
      out += ")";
      return out;
    }
    case ExprKind::kFunction: {
      std::string out(e.scalar_fn == ScalarFn::kAlign ? "ALIGN" : "DISTANCE");
      out += "(";
      out += ExprToString(*e.left);
      out += ", ";
      out += ExprToString(*e.right);
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace bdbms
