#ifndef BDBMS_SQL_LEXER_H_
#define BDBMS_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace bdbms {

enum class TokenType {
  kIdentifier,   // table/column/procedure names (case preserved)
  kKeyword,      // recognized keywords, normalized to upper case
  kString,       // 'quoted', '' escapes a quote
  kInteger,
  kFloat,
  kSymbol,       // ( ) , . ; * + - / = != <> < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // normalized: keywords upper-cased, strings unescaped
  size_t position = 0;  // byte offset in the input, for error messages

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

// Splits an A-SQL statement into tokens. Keywords are case-insensitive;
// anything word-shaped that is not a keyword is an identifier.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace bdbms

#endif  // BDBMS_SQL_LEXER_H_
