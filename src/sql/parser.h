#ifndef BDBMS_SQL_PARSER_H_
#define BDBMS_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace bdbms {

// Recursive-descent parser for the A-SQL surface: the SQL subset plus all
// bdbms extensions (Figures 4, 6, 7, 11 and the dependency DDL).
// Entry point for one statement (an optional trailing ';' is accepted).
Result<Statement> ParseStatement(std::string_view sql);

}  // namespace bdbms

#endif  // BDBMS_SQL_PARSER_H_
