#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace bdbms {

namespace {

// Every word with special meaning somewhere in the A-SQL grammar.
const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kw = new std::set<std::string>{
      "SELECT",  "DISTINCT", "FROM",     "WHERE",     "GROUP",     "BY",
      "HAVING",  "ORDER",    "ASC",      "DESC",      "AND",       "OR",
      "NOT",     "LIKE",     "AS",       "IS",        "NULL",      "CREATE",
      "DROP",    "TABLE",    "ANNOTATION", "ADD",     "TO",        "VALUE",
      "VALUES",  "ON",       "INSERT",   "INTO",      "UPDATE",    "SET",
      "DELETE",  "INTERSECT", "UNION",   "EXCEPT",    "PROMOTE",   "AWHERE",
      "AHAVING", "FILTER",   "ARCHIVE",  "RESTORE",   "BETWEEN",   "GRANT",
      "REVOKE",  "USER",     "GROUP",    "START",     "STOP",      "CONTENT",
      "APPROVAL", "COLUMNS", "APPROVED", "APPROVE",   "DISAPPROVE",
      "OPERATION", "PENDING", "SHOW",    "DEPENDENCY", "USING",    "JOIN",
      "PROVENANCE", "INT",   "INTEGER",  "DOUBLE",    "TEXT",      "SEQUENCE",
      "ALL",       "INDEX",  "EXPLAIN",  "LIMIT",     "ANALYZE",
      "SPGIST",    "CHECKPOINT", "BEGIN", "COMMIT",   "ROLLBACK",
      "TRANSACTION", "MATCHES",
  };
  return *kw;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      std::string word(input.substr(start, i - start));
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (Keywords().count(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_float = false;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
              ((input[i] == '+' || input[i] == '-') && i > start &&
               (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        if (input[i] == '.' || input[i] == 'e' || input[i] == 'E') {
          is_float = true;
        }
        ++i;
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        std::string(input.substr(start, i - start)), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < input.size()) {
        if (input[i] == '\'') {
          if (i + 1 < input.size() && input[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at byte " +
                                       std::to_string(start));
      }
      tokens.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Multi-char operators first.
    auto two = input.substr(i, 2);
    if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
      tokens.push_back(
          {TokenType::kSymbol, two == "<>" ? "!=" : std::string(two), i});
      i += 2;
      continue;
    }
    static const std::string kSingles = "(),.;*+-/=<>";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), i});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at byte " +
                                   std::to_string(i));
  }
  tokens.push_back({TokenType::kEnd, "", input.size()});
  return tokens;
}

}  // namespace bdbms
