#ifndef BDBMS_INDEX_SBC_STRING_BTREE_H_
#define BDBMS_INDEX_SBC_STRING_BTREE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/btree/bplus_tree.h"
#include "storage/heap_file.h"

namespace bdbms {

// A substring/prefix match: which sequence, at which character offset.
struct SequenceMatch {
  uint64_t seq_id;
  uint64_t offset;

  bool operator==(const SequenceMatch&) const = default;
  bool operator<(const SequenceMatch& o) const {
    return seq_id != o.seq_id ? seq_id < o.seq_id : offset < o.offset;
  }
};

// String B-tree over *uncompressed* sequences: the baseline the SBC-tree
// is compared against (paper §7.2). Every character position of every
// stored sequence contributes one suffix entry to a disk B+-tree (keys
// truncated to a bounded prefix; longer patterns fall back to verification
// against the stored sequence, I/O counted).
class StringBTree {
 public:
  // Suffix keys keep this many characters; patterns longer than this are
  // verified against the sequence store.
  static constexpr size_t kKeyPrefixLen = 40;

  static Result<std::unique_ptr<StringBTree>> CreateInMemory(
      size_t pool_pages = 256);

  StringBTree(const StringBTree&) = delete;
  StringBTree& operator=(const StringBTree&) = delete;

  // Stores `sequence` and indexes all of its suffixes. Returns its id.
  Result<uint64_t> AddSequence(const std::string& sequence);

  // All occurrences of `pattern` as a substring of any stored sequence.
  Result<std::vector<SequenceMatch>> SearchSubstring(
      const std::string& pattern) const;

  // Sequences having `pattern` as a prefix.
  Result<std::vector<uint64_t>> SearchPrefix(const std::string& pattern) const;

  // Sequences lexicographically in [lo, hi).
  Result<std::vector<uint64_t>> SearchRange(const std::string& lo,
                                            const std::string& hi) const;

  Result<std::string> GetSequence(uint64_t seq_id) const;

  uint64_t sequence_count() const { return seqs_.size(); }
  uint64_t entry_count() const { return tree_->size(); }
  uint64_t SizeBytes() const {
    return store_->SizeBytes() + tree_->SizeBytes();
  }
  // Aggregate logical I/O across the sequence store and the B-tree.
  IoStats TotalIo() const;
  void ResetIo();

 private:
  StringBTree(std::unique_ptr<HeapFile> store, std::unique_ptr<BPlusTree> tree)
      : store_(std::move(store)), tree_(std::move(tree)) {}

  static uint64_t PackPayload(uint64_t seq_id, uint64_t offset) {
    return (seq_id << 32) | offset;
  }

  std::unique_ptr<HeapFile> store_;   // raw sequences
  std::unique_ptr<BPlusTree> tree_;   // suffix entries
  std::map<uint64_t, RecordId> seqs_;
  uint64_t next_seq_id_ = 0;
};

}  // namespace bdbms

#endif  // BDBMS_INDEX_SBC_STRING_BTREE_H_
