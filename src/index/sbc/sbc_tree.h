#ifndef BDBMS_INDEX_SBC_SBC_TREE_H_
#define BDBMS_INDEX_SBC_SBC_TREE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rle.h"
#include "index/btree/bplus_tree.h"
#include "index/rtree/rtree.h"
#include "index/sbc/string_btree.h"
#include "storage/heap_file.h"

namespace bdbms {

// The SBC-tree (String B-tree for Compressed sequences, paper §7.2 /
// [Eltabakh et al., TR05-030]): indexes RLE-compressed sequences and
// answers substring / prefix / range queries *without decompressing*.
//
// Structure, mirroring the paper's two-level design:
//  * sequences are stored as binary RLE run vectors;
//  * one suffix entry per *run boundary* (instead of one per character —
//    this is where the ~order-of-magnitude storage and insertion savings
//    come from): the String B-tree layer keys each entry by
//        first-run character ++ bounded expansion of the following runs,
//    with the first run's length carried in the entry payload;
//  * substring matching uses the RLE structure: an occurrence's first
//    pattern run must align with the *end* of a sequence run of the same
//    character and >= length, middle runs must match exactly, and the
//    last run must be a prefix of the corresponding sequence run. The
//    ">= length" predicate over a B-tree key range is the paper's 3-sided
//    query; like the authors' prototype we realize the 3-sided structure
//    with an R-tree (built on demand via BuildThreeSidedIndex()), with an
//    inline filter as the dynamic fallback.
class SbcTree {
 public:
  static constexpr size_t kTailKeyLen = 40;

  static Result<std::unique_ptr<SbcTree>> CreateInMemory(
      size_t pool_pages = 256);

  SbcTree(const SbcTree&) = delete;
  SbcTree& operator=(const SbcTree&) = delete;

  // Compresses and stores `sequence`, indexing its run-boundary suffixes.
  Result<uint64_t> AddSequence(const std::string& sequence);

  // Occurrences of `pattern` (raw, uncompressed form) in stored sequences.
  // Each match reports the character offset of the occurrence. When a run
  // contains several occurrences (single-run patterns), the first is
  // reported.
  Result<std::vector<SequenceMatch>> SearchSubstring(
      const std::string& pattern) const;

  // Sequences having `pattern` as a prefix.
  Result<std::vector<uint64_t>> SearchPrefix(const std::string& pattern) const;

  // Sequences lexicographically in [lo, hi) — compares the compressed
  // form against the bounds run-wise.
  Result<std::vector<uint64_t>> SearchRange(const std::string& lo,
                                            const std::string& hi) const;

  // Builds the R-tree 3-sided structure over (entry rank, first-run
  // length). Intended for static datasets; subsequent AddSequence calls
  // invalidate it (queries fall back to the inline filter).
  Status BuildThreeSidedIndex();
  bool three_sided_active() const;

  // Decompressed sequence (for verification in tests).
  Result<std::string> GetSequence(uint64_t seq_id) const;

  uint64_t sequence_count() const { return seqs_.size(); }
  uint64_t entry_count() const { return tree_->size(); }
  uint64_t SizeBytes() const;
  IoStats TotalIo() const;
  void ResetIo();

 private:
  SbcTree(std::unique_ptr<HeapFile> store, std::unique_ptr<BPlusTree> tree,
          std::unique_ptr<BPlusTree> start_tree)
      : store_(std::move(store)),
        tree_(std::move(tree)),
        start_tree_(std::move(start_tree)) {}

  // payload layout: seq_id (24 bits) | run index (20) | first-run length
  // (20, saturated).
  static uint64_t PackPayload(uint64_t seq_id, uint64_t run_idx,
                              uint64_t first_len) {
    if (first_len > 0xFFFFF) first_len = 0xFFFFF;
    return (seq_id << 40) | (run_idx << 20) | first_len;
  }
  static uint64_t SeqOf(uint64_t p) { return p >> 40; }
  static uint64_t RunOf(uint64_t p) { return (p >> 20) & 0xFFFFF; }
  static uint64_t LenOf(uint64_t p) { return p & 0xFFFFF; }

  Result<std::vector<RleRun>> GetRuns(uint64_t seq_id) const;

  // Bounded raw expansion of runs[from..], at most `limit` characters.
  static std::string ExpandRuns(const std::vector<RleRun>& runs, size_t from,
                                size_t limit);

  // Lexicographic comparison of the sequence (given as runs) against a raw
  // string, without materializing the sequence.
  static int CompareRunsToRaw(const std::vector<RleRun>& runs,
                              const std::string& raw);

  // Checks an occurrence candidate directly on run vectors.
  static bool VerifyAt(const std::vector<RleRun>& seq_runs, size_t run_idx,
                       const std::vector<RleRun>& pattern_runs);

  // Character offset where the occurrence anchored at run `run_idx` starts.
  static uint64_t MatchOffset(const std::vector<RleRun>& seq_runs,
                              size_t run_idx,
                              const std::vector<RleRun>& pattern_runs);

  std::unique_ptr<HeapFile> store_;      // binary RLE sequences
  std::unique_ptr<BPlusTree> tree_;      // run-boundary suffix entries
  std::unique_ptr<BPlusTree> start_tree_;  // whole-sequence keys (range search)
  std::map<uint64_t, RecordId> seqs_;
  uint64_t next_seq_id_ = 0;

  // Optional 3-sided structure.
  std::unique_ptr<RTree> three_sided_;
  std::vector<std::string> rank_keys_;  // sorted entry keys at build time
  uint64_t entries_at_build_ = 0;
};

}  // namespace bdbms

#endif  // BDBMS_INDEX_SBC_SBC_TREE_H_
