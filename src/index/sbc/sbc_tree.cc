#include "index/sbc/sbc_tree.h"

#include <algorithm>
#include <cstring>

namespace bdbms {

namespace {

std::string SerializeRuns(const std::vector<RleRun>& runs) {
  std::string out;
  out.reserve(runs.size() * 5);
  for (const RleRun& r : runs) {
    out.push_back(r.ch);
    out.append(reinterpret_cast<const char*>(&r.length), 4);
  }
  return out;
}

Result<std::vector<RleRun>> DeserializeRuns(std::string_view data) {
  if (data.size() % 5 != 0) {
    return Status::Corruption("bad RLE record size");
  }
  std::vector<RleRun> runs;
  runs.reserve(data.size() / 5);
  for (size_t i = 0; i < data.size(); i += 5) {
    RleRun r;
    r.ch = data[i];
    std::memcpy(&r.length, data.data() + i + 1, 4);
    runs.push_back(r);
  }
  return runs;
}

}  // namespace

Result<std::unique_ptr<SbcTree>> SbcTree::CreateInMemory(size_t pool_pages) {
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> store,
                         HeapFile::CreateInMemory(pool_pages));
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<BPlusTree> tree,
                         BPlusTree::CreateInMemory(pool_pages));
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<BPlusTree> start_tree,
                         BPlusTree::CreateInMemory(64));
  return std::unique_ptr<SbcTree>(new SbcTree(
      std::move(store), std::move(tree), std::move(start_tree)));
}

std::string SbcTree::ExpandRuns(const std::vector<RleRun>& runs, size_t from,
                                size_t limit) {
  std::string out;
  for (size_t i = from; i < runs.size() && out.size() < limit; ++i) {
    size_t take = std::min<size_t>(limit - out.size(), runs[i].length);
    out.append(take, runs[i].ch);
  }
  return out;
}

Result<uint64_t> SbcTree::AddSequence(const std::string& sequence) {
  if (sequence.empty()) {
    return Status::InvalidArgument("empty sequence");
  }
  std::vector<RleRun> runs = Rle::Encode(sequence);
  BDBMS_ASSIGN_OR_RETURN(RecordId rid, store_->Insert(SerializeRuns(runs)));
  uint64_t seq_id = next_seq_id_++;
  seqs_[seq_id] = rid;
  // One entry per run boundary: key = run char + bounded raw tail.
  for (size_t j = 0; j < runs.size(); ++j) {
    std::string key;
    key.push_back(runs[j].ch);
    key += ExpandRuns(runs, j + 1, kTailKeyLen);
    BDBMS_RETURN_IF_ERROR(
        tree_->Insert(key, PackPayload(seq_id, j, runs[j].length)));
  }
  // Whole-sequence key for range search.
  BDBMS_RETURN_IF_ERROR(
      start_tree_->Insert(ExpandRuns(runs, 0, StringBTree::kKeyPrefixLen),
                          seq_id));
  return seq_id;
}

Result<std::vector<RleRun>> SbcTree::GetRuns(uint64_t seq_id) const {
  auto it = seqs_.find(seq_id);
  if (it == seqs_.end()) {
    return Status::NotFound("no sequence " + std::to_string(seq_id));
  }
  BDBMS_ASSIGN_OR_RETURN(std::string payload, store_->Read(it->second));
  return DeserializeRuns(payload);
}

Result<std::string> SbcTree::GetSequence(uint64_t seq_id) const {
  BDBMS_ASSIGN_OR_RETURN(std::vector<RleRun> runs, GetRuns(seq_id));
  return Rle::Decode(runs);
}

bool SbcTree::VerifyAt(const std::vector<RleRun>& seq_runs, size_t run_idx,
                       const std::vector<RleRun>& q) {
  size_t k = q.size();
  if (run_idx + k > seq_runs.size()) return false;
  // First pattern run: suffix of the anchor run.
  if (seq_runs[run_idx].ch != q[0].ch || seq_runs[run_idx].length < q[0].length)
    return false;
  if (k == 1) return true;
  // Middle runs: exact.
  for (size_t i = 1; i + 1 < k; ++i) {
    if (!(seq_runs[run_idx + i] == q[i])) return false;
  }
  // Last run: prefix of the sequence run.
  const RleRun& last = seq_runs[run_idx + k - 1];
  return last.ch == q[k - 1].ch && last.length >= q[k - 1].length;
}

uint64_t SbcTree::MatchOffset(const std::vector<RleRun>& seq_runs,
                              size_t run_idx,
                              const std::vector<RleRun>& q) {
  uint64_t offset = 0;
  for (size_t i = 0; i < run_idx; ++i) offset += seq_runs[i].length;
  // Single-run patterns report the first occurrence inside the run;
  // multi-run occurrences end flush with the anchor run.
  if (q.size() > 1) offset += seq_runs[run_idx].length - q[0].length;
  return offset;
}

Result<std::vector<SequenceMatch>> SbcTree::SearchSubstring(
    const std::string& pattern) const {
  if (pattern.empty()) return Status::InvalidArgument("empty pattern");
  std::vector<RleRun> q = Rle::Encode(pattern);

  // B-tree probe: anchor char + raw tail after the first pattern run.
  std::string probe;
  probe.push_back(q[0].ch);
  std::string raw_tail = pattern.substr(q[0].length);
  bool tail_truncated = raw_tail.size() > kTailKeyLen;
  probe += raw_tail.substr(0, kTailKeyLen);

  std::vector<uint64_t> candidates;
  if (three_sided_active()) {
    // 3-sided query through the R-tree: key-rank range x length >= q0.len.
    auto lo_it = std::lower_bound(rank_keys_.begin(), rank_keys_.end(), probe);
    std::string probe_hi = probe + "\xff";
    auto hi_it = std::upper_bound(rank_keys_.begin(), rank_keys_.end(),
                                  probe_hi);
    double rank_lo = static_cast<double>(lo_it - rank_keys_.begin());
    double rank_hi = static_cast<double>(hi_it - rank_keys_.begin());
    Rect window{rank_lo - 0.5, static_cast<double>(q[0].length), rank_hi + 0.5,
                1e18};
    BDBMS_RETURN_IF_ERROR(three_sided_->SearchWindow(
        window, [&](const Rect&, uint64_t payload) {
          candidates.push_back(payload);
          return true;
        }));
  } else {
    BDBMS_RETURN_IF_ERROR(
        tree_->ScanPrefix(probe, [&](std::string_view, uint64_t payload) {
          if (LenOf(payload) >= q[0].length) candidates.push_back(payload);
          return true;
        }));
  }

  std::vector<SequenceMatch> out;
  std::map<uint64_t, std::vector<RleRun>> run_cache;
  for (uint64_t payload : candidates) {
    uint64_t seq_id = SeqOf(payload);
    uint64_t run_idx = RunOf(payload);
    if (tail_truncated || LenOf(payload) == 0xFFFFF) {
      auto it = run_cache.find(seq_id);
      if (it == run_cache.end()) {
        BDBMS_ASSIGN_OR_RETURN(std::vector<RleRun> runs, GetRuns(seq_id));
        it = run_cache.emplace(seq_id, std::move(runs)).first;
      }
      if (!VerifyAt(it->second, run_idx, q)) continue;
      out.push_back({seq_id, MatchOffset(it->second, run_idx, q)});
    } else {
      // Key + payload alone prove the match; compute the offset from the
      // run vector (cached, one read per sequence).
      auto it = run_cache.find(seq_id);
      if (it == run_cache.end()) {
        BDBMS_ASSIGN_OR_RETURN(std::vector<RleRun> runs, GetRuns(seq_id));
        it = run_cache.emplace(seq_id, std::move(runs)).first;
      }
      out.push_back({seq_id, MatchOffset(it->second, run_idx, q)});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<uint64_t>> SbcTree::SearchPrefix(
    const std::string& pattern) const {
  if (pattern.empty()) return Status::InvalidArgument("empty pattern");
  std::vector<RleRun> q = Rle::Encode(pattern);
  BDBMS_ASSIGN_OR_RETURN(std::vector<SequenceMatch> matches,
                         SearchSubstring(pattern));
  std::vector<uint64_t> out;
  for (const SequenceMatch& m : matches) {
    if (m.offset != 0) continue;
    // Multi-run patterns: offset 0 already implies the first run matched
    // with exactly q[0].length characters before the next run.
    out.push_back(m.seq_id);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int SbcTree::CompareRunsToRaw(const std::vector<RleRun>& runs,
                              const std::string& raw) {
  size_t pos = 0;
  for (const RleRun& r : runs) {
    for (uint32_t i = 0; i < r.length; ++i) {
      if (pos >= raw.size()) return 1;  // raw is a proper prefix
      if (r.ch != raw[pos]) return r.ch < raw[pos] ? -1 : 1;
      ++pos;
    }
  }
  return pos == raw.size() ? 0 : -1;
}

Result<std::vector<uint64_t>> SbcTree::SearchRange(
    const std::string& lo, const std::string& hi) const {
  std::vector<uint64_t> candidates;
  std::string lo_key = lo.substr(0, StringBTree::kKeyPrefixLen);
  std::string hi_key = hi.substr(0, StringBTree::kKeyPrefixLen);
  BDBMS_RETURN_IF_ERROR(start_tree_->ScanRange(
      lo_key, hi_key + "\xff", [&](std::string_view, uint64_t seq_id) {
        candidates.push_back(seq_id);
        return true;
      }));
  std::vector<uint64_t> out;
  for (uint64_t seq_id : candidates) {
    BDBMS_ASSIGN_OR_RETURN(std::vector<RleRun> runs, GetRuns(seq_id));
    if (CompareRunsToRaw(runs, lo) >= 0 && CompareRunsToRaw(runs, hi) < 0) {
      out.push_back(seq_id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status SbcTree::BuildThreeSidedIndex() {
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<RTree> rtree,
                         RTree::CreateInMemory());
  rank_keys_.clear();
  // One pass over the B-tree in key order: rank = position.
  std::vector<std::pair<std::string, uint64_t>> entries;
  BDBMS_RETURN_IF_ERROR(
      tree_->ScanPrefix("", [&](std::string_view key, uint64_t payload) {
        entries.emplace_back(std::string(key), payload);
        return true;
      }));
  for (size_t rank = 0; rank < entries.size(); ++rank) {
    rank_keys_.push_back(entries[rank].first);
    BDBMS_RETURN_IF_ERROR(rtree->Insert(
        Rect::Point(static_cast<double>(rank),
                    static_cast<double>(LenOf(entries[rank].second))),
        entries[rank].second));
  }
  three_sided_ = std::move(rtree);
  entries_at_build_ = tree_->size();
  return Status::Ok();
}

bool SbcTree::three_sided_active() const {
  return three_sided_ != nullptr && entries_at_build_ == tree_->size();
}

uint64_t SbcTree::SizeBytes() const {
  uint64_t total = store_->SizeBytes() + tree_->SizeBytes() +
                   start_tree_->SizeBytes();
  if (three_sided_ != nullptr) total += three_sided_->SizeBytes();
  return total;
}

IoStats SbcTree::TotalIo() const {
  IoStats total = store_->io_stats();
  for (const IoStats* s : {&tree_->io_stats(), &start_tree_->io_stats()}) {
    total.page_reads += s->page_reads;
    total.page_writes += s->page_writes;
    total.pages_allocated += s->pages_allocated;
  }
  if (three_sided_ != nullptr) {
    const IoStats& s = three_sided_->io_stats();
    total.page_reads += s.page_reads;
    total.page_writes += s.page_writes;
    total.pages_allocated += s.pages_allocated;
  }
  return total;
}

void SbcTree::ResetIo() {
  store_->io_stats().Reset();
  tree_->io_stats().Reset();
  start_tree_->io_stats().Reset();
  if (three_sided_ != nullptr) three_sided_->io_stats().Reset();
}

}  // namespace bdbms
