#include "index/sbc/string_btree.h"

#include <algorithm>

namespace bdbms {

Result<std::unique_ptr<StringBTree>> StringBTree::CreateInMemory(
    size_t pool_pages) {
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> store,
                         HeapFile::CreateInMemory(pool_pages));
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<BPlusTree> tree,
                         BPlusTree::CreateInMemory(pool_pages));
  return std::unique_ptr<StringBTree>(
      new StringBTree(std::move(store), std::move(tree)));
}

Result<uint64_t> StringBTree::AddSequence(const std::string& sequence) {
  if (sequence.empty()) {
    return Status::InvalidArgument("empty sequence");
  }
  BDBMS_ASSIGN_OR_RETURN(RecordId rid, store_->Insert(sequence));
  uint64_t seq_id = next_seq_id_++;
  seqs_[seq_id] = rid;
  for (size_t i = 0; i < sequence.size(); ++i) {
    std::string key = sequence.substr(i, kKeyPrefixLen);
    BDBMS_RETURN_IF_ERROR(tree_->Insert(key, PackPayload(seq_id, i)));
  }
  return seq_id;
}

Result<std::string> StringBTree::GetSequence(uint64_t seq_id) const {
  auto it = seqs_.find(seq_id);
  if (it == seqs_.end()) {
    return Status::NotFound("no sequence " + std::to_string(seq_id));
  }
  return store_->Read(it->second);
}

Result<std::vector<SequenceMatch>> StringBTree::SearchSubstring(
    const std::string& pattern) const {
  if (pattern.empty()) return Status::InvalidArgument("empty pattern");
  std::vector<SequenceMatch> out;
  std::string probe = pattern.substr(0, kKeyPrefixLen);
  std::vector<SequenceMatch> candidates;
  BDBMS_RETURN_IF_ERROR(
      tree_->ScanPrefix(probe, [&](std::string_view, uint64_t payload) {
        candidates.push_back({payload >> 32, payload & 0xFFFFFFFFu});
        return true;
      }));
  if (pattern.size() <= kKeyPrefixLen) {
    out = std::move(candidates);
  } else {
    // Pattern exceeds the truncated key: verify against the stored
    // sequence (these reads are the I/O cost of long patterns).
    for (const SequenceMatch& m : candidates) {
      BDBMS_ASSIGN_OR_RETURN(std::string seq, GetSequence(m.seq_id));
      if (seq.compare(m.offset, pattern.size(), pattern) == 0) {
        out.push_back(m);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<uint64_t>> StringBTree::SearchPrefix(
    const std::string& pattern) const {
  BDBMS_ASSIGN_OR_RETURN(std::vector<SequenceMatch> matches,
                         SearchSubstring(pattern));
  std::vector<uint64_t> out;
  for (const SequenceMatch& m : matches) {
    if (m.offset == 0) out.push_back(m.seq_id);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<uint64_t>> StringBTree::SearchRange(
    const std::string& lo, const std::string& hi) const {
  std::vector<uint64_t> out;
  std::string lo_key = lo.substr(0, kKeyPrefixLen);
  std::string hi_key = hi.substr(0, kKeyPrefixLen);
  std::vector<SequenceMatch> candidates;
  BDBMS_RETURN_IF_ERROR(tree_->ScanRange(
      lo_key, hi_key + "\xff", [&](std::string_view, uint64_t payload) {
        if ((payload & 0xFFFFFFFFu) == 0) {
          candidates.push_back({payload >> 32, 0});
        }
        return true;
      }));
  for (const SequenceMatch& m : candidates) {
    BDBMS_ASSIGN_OR_RETURN(std::string seq, GetSequence(m.seq_id));
    if (seq >= lo && seq < hi) out.push_back(m.seq_id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

IoStats StringBTree::TotalIo() const {
  IoStats total = store_->io_stats();
  const IoStats& t = tree_->io_stats();
  total.page_reads += t.page_reads;
  total.page_writes += t.page_writes;
  total.pages_allocated += t.pages_allocated;
  return total;
}

void StringBTree::ResetIo() {
  store_->io_stats().Reset();
  tree_->io_stats().Reset();
}

}  // namespace bdbms
