#ifndef BDBMS_INDEX_SEQUENCE_INDEX_H_
#define BDBMS_INDEX_SEQUENCE_INDEX_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bio/alignment.h"
#include "common/result.h"
#include "common/value.h"
#include "index/spgist/trie_ops.h"
#include "table/table.h"

namespace bdbms {

// A sequence index: the SP-GiST disk-based trie (paper §7.1) registered as
// a planner-visible secondary index over one string-typed column —
// `CREATE SEQUENCE INDEX ... USING SPGIST`. The trie partitions keys by
// next character, so prefix probes (`seq LIKE 'ACGT%'`) descend only the
// matching subtrees instead of scanning the table; exact probes descend a
// single path. Maintained by Table on every INSERT/UPDATE/DELETE (and so
// by approval rollbacks), like the B+-tree secondary indexes.
//
// NULL cells are not indexed: no SQL comparison or LIKE predicate is ever
// true on NULL, so probes could never return them. The trie reserves the
// NUL byte as its end-of-key label, so values containing embedded NUL
// bytes are rejected at maintenance time rather than silently dropped.
//
// Internally synchronized, like SecondaryIndex: the trie's page cache
// mutates on reads, so concurrent probes serialize on the index's mutex.
class SequenceIndex {
 public:
  static Result<std::unique_ptr<SequenceIndex>> Create(std::string name,
                                                       size_t column);

  SequenceIndex(const SequenceIndex&) = delete;
  SequenceIndex& operator=(const SequenceIndex&) = delete;

  const std::string& name() const { return name_; }
  size_t column() const { return column_; }
  uint64_t entry_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trie_->size();
  }

  // --- maintenance (Table calls these with the cell's stored value) -------
  Status Insert(const Value& cell, RowId row_id);
  Status Remove(const Value& cell, RowId row_id);

  // --- probes (planner/SpgistScan) ----------------------------------------
  // RowIds whose cell starts with `prefix`, ascending.
  Result<std::vector<RowId>> FindPrefix(const std::string& prefix) const;
  // RowIds whose cell equals `text` exactly, ascending.
  Result<std::vector<RowId>> FindExact(const std::string& text) const;
  // RowIds whose whole cell matches `program`, ascending. The NFA state
  // set advances edge by edge during the descent; subtrees whose state
  // set goes dead are never visited.
  Result<std::vector<RowId>> FindRegex(const RegexProgram& program) const;

  // One ranked result of FindNearest.
  struct Neighbor {
    RowId row;
    int distance;
  };
  // The nearest indexed sequences to `target` by edit distance, in
  // (distance, RowId) order: a best-first traversal over per-subtree
  // Levenshtein lower bounds (spgscan.c-style ordered scan). `keep` vets
  // each candidate — MVCC visibility plus a stored-cell equality check —
  // before it counts toward k, so stale index entries cannot underfill
  // the result. All ties at the k-th distance are returned; the caller's
  // LIMIT makes the final cut. `keep` is always invoked with the index
  // mutex released (it takes the table lock, and DML locks table before
  // index); a rejection blacklists the entry and reruns the traversal.
  Result<std::vector<Neighbor>> FindNearest(
      const std::string& target, size_t k,
      const std::function<bool(RowId, const std::string& cell)>& keep) const;

  // RowIds whose cell aligns locally to `query` with Smith–Waterman
  // score >= min_score (or > when `strict`), ascending. The DP rows are
  // threaded down the trie, so keys sharing a prefix share that much of
  // the O(n*m) work and duplicate sequences are scored once per leaf
  // group rather than once per row.
  Result<std::vector<RowId>> FindAlign(
      const std::string& query, int min_score, bool strict,
      const AlignmentParams& params = {}) const;

 private:
  SequenceIndex(std::string name, size_t column,
                std::unique_ptr<SpGistTrie> trie)
      : name_(std::move(name)), column_(column), trie_(std::move(trie)) {}

  Result<std::vector<RowId>> Collect(const TrieOps::Query& query) const;

  std::string name_;
  size_t column_;
  std::unique_ptr<SpGistTrie> trie_;
  mutable std::mutex mu_;
};

}  // namespace bdbms

#endif  // BDBMS_INDEX_SEQUENCE_INDEX_H_
