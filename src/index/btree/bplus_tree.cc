#include "index/btree/bplus_tree.h"

#include <algorithm>
#include <cstring>

namespace bdbms {

// Page layout (both node kinds re-serialize the whole node on write):
//   [0]  uint8  node type (20 = leaf, 21 = inner)
//   leaf:  [4] u32 next leaf, [8] u32 count,
//          entries: u16 klen, key bytes, u64 payload
//   inner: [4] u32 count (of keys), [8] u32 child0,
//          entries: u16 klen, key bytes, u32 child
namespace {

constexpr uint8_t kLeafType = 20;
constexpr uint8_t kInnerType = 21;
constexpr uint32_t kNodeBudget = kPageSize - 64;
constexpr size_t kMaxKeyLen = 1024;

}  // namespace

BPlusTree::BPlusTree(std::unique_ptr<Pager> pager, size_t pool_pages)
    : pager_(std::move(pager)),
      pool_(std::make_unique<BufferPool>(pager_.get(), pool_pages)) {}

Result<std::unique_ptr<BPlusTree>> BPlusTree::CreateInMemory(
    size_t pool_pages) {
  auto tree = std::unique_ptr<BPlusTree>(
      new BPlusTree(Pager::OpenInMemory(), pool_pages));
  BDBMS_ASSIGN_OR_RETURN(PageHandle root, tree->pool_->New());
  tree->root_ = root.id();
  root.page()->WriteAt<uint8_t>(0, kLeafType);
  root.page()->WriteAt<uint32_t>(4, kInvalidPageId);
  root.page()->WriteAt<uint32_t>(8, 0);
  root.MarkDirty();
  return tree;
}

Result<bool> BPlusTree::IsLeaf(PageId id) const {
  BDBMS_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  uint8_t type = h.page()->ReadAt<uint8_t>(0);
  if (type != kLeafType && type != kInnerType) {
    return Status::Corruption("not a b+-tree node");
  }
  return type == kLeafType;
}

Result<BPlusTree::LeafNode> BPlusTree::ReadLeaf(PageId id) const {
  BDBMS_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  const Page& p = *h.page();
  if (p.ReadAt<uint8_t>(0) != kLeafType) {
    return Status::Corruption("expected leaf node");
  }
  LeafNode node;
  node.next = p.ReadAt<uint32_t>(4);
  uint32_t count = p.ReadAt<uint32_t>(8);
  uint32_t off = 12;
  node.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint16_t klen = p.ReadAt<uint16_t>(off);
    off += 2;
    std::string key(reinterpret_cast<const char*>(p.bytes() + off), klen);
    off += klen;
    uint64_t payload = p.ReadAt<uint64_t>(off);
    off += 8;
    node.entries.push_back({std::move(key), payload});
  }
  return node;
}

Result<BPlusTree::InnerNode> BPlusTree::ReadInner(PageId id) const {
  BDBMS_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  const Page& p = *h.page();
  if (p.ReadAt<uint8_t>(0) != kInnerType) {
    return Status::Corruption("expected inner node");
  }
  InnerNode node;
  uint32_t count = p.ReadAt<uint32_t>(4);
  node.children.push_back(p.ReadAt<uint32_t>(8));
  uint32_t off = 12;
  for (uint32_t i = 0; i < count; ++i) {
    uint16_t klen = p.ReadAt<uint16_t>(off);
    off += 2;
    node.keys.emplace_back(reinterpret_cast<const char*>(p.bytes() + off),
                           klen);
    off += klen;
    node.children.push_back(p.ReadAt<uint32_t>(off));
    off += 4;
  }
  return node;
}

Status BPlusTree::WriteLeaf(PageId id, const LeafNode& node) {
  BDBMS_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  Page* p = h.page();
  p->Zero();
  p->WriteAt<uint8_t>(0, kLeafType);
  p->WriteAt<uint32_t>(4, node.next);
  p->WriteAt<uint32_t>(8, static_cast<uint32_t>(node.entries.size()));
  uint32_t off = 12;
  for (const LeafEntry& e : node.entries) {
    p->WriteAt<uint16_t>(off, static_cast<uint16_t>(e.key.size()));
    off += 2;
    std::memcpy(p->bytes() + off, e.key.data(), e.key.size());
    off += static_cast<uint32_t>(e.key.size());
    p->WriteAt<uint64_t>(off, e.payload);
    off += 8;
  }
  h.MarkDirty();
  return Status::Ok();
}

Status BPlusTree::WriteInner(PageId id, const InnerNode& node) {
  BDBMS_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  Page* p = h.page();
  p->Zero();
  p->WriteAt<uint8_t>(0, kInnerType);
  p->WriteAt<uint32_t>(4, static_cast<uint32_t>(node.keys.size()));
  p->WriteAt<uint32_t>(8, node.children[0]);
  uint32_t off = 12;
  for (size_t i = 0; i < node.keys.size(); ++i) {
    p->WriteAt<uint16_t>(off, static_cast<uint16_t>(node.keys[i].size()));
    off += 2;
    std::memcpy(p->bytes() + off, node.keys[i].data(), node.keys[i].size());
    off += static_cast<uint32_t>(node.keys[i].size());
    p->WriteAt<uint32_t>(off, node.children[i + 1]);
    off += 4;
  }
  h.MarkDirty();
  return Status::Ok();
}

uint64_t BPlusTree::LeafSerializedSize(const LeafNode& n) {
  uint64_t size = 12;
  for (const LeafEntry& e : n.entries) size += 2 + e.key.size() + 8;
  return size;
}

uint64_t BPlusTree::InnerSerializedSize(const InnerNode& n) {
  uint64_t size = 12;
  for (const std::string& k : n.keys) size += 2 + k.size() + 4;
  return size;
}

Result<std::optional<BPlusTree::SplitResult>> BPlusTree::InsertRec(
    PageId node_id, std::string_view key, uint64_t payload) {
  BDBMS_ASSIGN_OR_RETURN(bool leaf, IsLeaf(node_id));
  if (leaf) {
    BDBMS_ASSIGN_OR_RETURN(LeafNode node, ReadLeaf(node_id));
    auto pos = std::upper_bound(
        node.entries.begin(), node.entries.end(), key,
        [](std::string_view k, const LeafEntry& e) { return k < e.key; });
    node.entries.insert(pos, {std::string(key), payload});
    if (LeafSerializedSize(node) <= kNodeBudget) {
      BDBMS_RETURN_IF_ERROR(WriteLeaf(node_id, node));
      return std::optional<SplitResult>();
    }
    // Split: right half moves to a new leaf.
    size_t mid = node.entries.size() / 2;
    LeafNode right;
    right.entries.assign(node.entries.begin() + mid, node.entries.end());
    node.entries.resize(mid);
    right.next = node.next;
    BDBMS_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    PageId right_id = rh.id();
    rh.Release();
    node.next = right_id;
    BDBMS_RETURN_IF_ERROR(WriteLeaf(right_id, right));
    BDBMS_RETURN_IF_ERROR(WriteLeaf(node_id, node));
    return std::optional<SplitResult>(
        SplitResult{right.entries.front().key, right_id});
  }

  BDBMS_ASSIGN_OR_RETURN(InnerNode node, ReadInner(node_id));
  size_t child_idx =
      std::upper_bound(node.keys.begin(), node.keys.end(), std::string(key)) -
      node.keys.begin();
  BDBMS_ASSIGN_OR_RETURN(std::optional<SplitResult> split,
                         InsertRec(node.children[child_idx], key, payload));
  if (!split.has_value()) return std::optional<SplitResult>();

  node.keys.insert(node.keys.begin() + child_idx, split->separator);
  node.children.insert(node.children.begin() + child_idx + 1, split->right);
  if (InnerSerializedSize(node) <= kNodeBudget) {
    BDBMS_RETURN_IF_ERROR(WriteInner(node_id, node));
    return std::optional<SplitResult>();
  }
  // Split inner: middle key moves up.
  size_t mid = node.keys.size() / 2;
  std::string up_key = node.keys[mid];
  InnerNode right;
  right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
  right.children.assign(node.children.begin() + mid + 1, node.children.end());
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  BDBMS_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  PageId right_id = rh.id();
  rh.Release();
  BDBMS_RETURN_IF_ERROR(WriteInner(right_id, right));
  BDBMS_RETURN_IF_ERROR(WriteInner(node_id, node));
  return std::optional<SplitResult>(SplitResult{std::move(up_key), right_id});
}

Status BPlusTree::Insert(std::string_view key, uint64_t payload) {
  if (key.size() > kMaxKeyLen) {
    return Status::InvalidArgument("b+-tree key exceeds 1 KiB");
  }
  BDBMS_ASSIGN_OR_RETURN(std::optional<SplitResult> split,
                         InsertRec(root_, key, payload));
  if (split.has_value()) {
    InnerNode new_root;
    new_root.keys.push_back(split->separator);
    new_root.children.push_back(root_);
    new_root.children.push_back(split->right);
    BDBMS_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    PageId new_root_id = rh.id();
    rh.Release();
    BDBMS_RETURN_IF_ERROR(WriteInner(new_root_id, new_root));
    root_ = new_root_id;
  }
  ++size_;
  return Status::Ok();
}

Result<PageId> BPlusTree::DescendToLeaf(std::string_view key) const {
  PageId node_id = root_;
  for (;;) {
    BDBMS_ASSIGN_OR_RETURN(bool leaf, IsLeaf(node_id));
    if (leaf) return node_id;
    BDBMS_ASSIGN_OR_RETURN(InnerNode node, ReadInner(node_id));
    // Descend to the leftmost child that can contain `key`: duplicates of
    // a separator key may sit in the left subtree, so use lower_bound.
    size_t idx =
        std::lower_bound(node.keys.begin(), node.keys.end(), std::string(key)) -
        node.keys.begin();
    node_id = node.children[idx];
  }
}

Result<std::vector<uint64_t>> BPlusTree::SearchExact(
    std::string_view key) const {
  std::vector<uint64_t> out;
  BDBMS_RETURN_IF_ERROR(ScanRange(key, std::string(key) + '\0',
                                  [&](std::string_view k, uint64_t payload) {
                                    if (k == key) out.push_back(payload);
                                    return true;
                                  }));
  return out;
}

Status BPlusTree::ScanRange(
    std::string_view lo, std::string_view hi,
    const std::function<bool(std::string_view, uint64_t)>& fn) const {
  BDBMS_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(lo));
  while (leaf_id != kInvalidPageId) {
    BDBMS_ASSIGN_OR_RETURN(LeafNode node, ReadLeaf(leaf_id));
    for (const LeafEntry& e : node.entries) {
      if (e.key < lo) continue;
      if (e.key >= std::string(hi)) return Status::Ok();
      if (!fn(e.key, e.payload)) return Status::Ok();
    }
    leaf_id = node.next;
  }
  return Status::Ok();
}

Status BPlusTree::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, uint64_t)>& fn) const {
  if (prefix.empty()) {
    // Full scan from the leftmost leaf.
    BDBMS_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(""));
    while (leaf_id != kInvalidPageId) {
      BDBMS_ASSIGN_OR_RETURN(LeafNode node, ReadLeaf(leaf_id));
      for (const LeafEntry& e : node.entries) {
        if (!fn(e.key, e.payload)) return Status::Ok();
      }
      leaf_id = node.next;
    }
    return Status::Ok();
  }
  // [prefix, prefix+1) — increment the last byte, handling 0xFF carries.
  std::string hi(prefix);
  size_t i = hi.size();
  while (i > 0) {
    if (static_cast<unsigned char>(hi[i - 1]) != 0xFF) {
      hi[i - 1] = static_cast<char>(static_cast<unsigned char>(hi[i - 1]) + 1);
      hi.resize(i);
      break;
    }
    --i;
  }
  if (i == 0) {
    // All-0xFF prefix: scan to the end of the key space.
    BDBMS_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(prefix));
    while (leaf_id != kInvalidPageId) {
      BDBMS_ASSIGN_OR_RETURN(LeafNode node, ReadLeaf(leaf_id));
      for (const LeafEntry& e : node.entries) {
        if (e.key.compare(0, prefix.size(), prefix) == 0) {
          if (!fn(e.key, e.payload)) return Status::Ok();
        } else if (e.key > std::string(prefix)) {
          return Status::Ok();
        }
      }
      leaf_id = node.next;
    }
    return Status::Ok();
  }
  return ScanRange(prefix, hi, fn);
}

Status BPlusTree::Delete(std::string_view key, uint64_t payload) {
  BDBMS_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key));
  while (leaf_id != kInvalidPageId) {
    BDBMS_ASSIGN_OR_RETURN(LeafNode node, ReadLeaf(leaf_id));
    bool past = false;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].key == key && node.entries[i].payload == payload) {
        node.entries.erase(node.entries.begin() + i);
        BDBMS_RETURN_IF_ERROR(WriteLeaf(leaf_id, node));
        --size_;
        return Status::Ok();
      }
      if (node.entries[i].key > std::string(key)) {
        past = true;
        break;
      }
    }
    if (past) break;
    leaf_id = node.next;
  }
  return Status::NotFound("no such b+-tree entry");
}

Result<int> BPlusTree::Height() const {
  int height = 1;
  PageId node_id = root_;
  for (;;) {
    BDBMS_ASSIGN_OR_RETURN(bool leaf, IsLeaf(node_id));
    if (leaf) return height;
    BDBMS_ASSIGN_OR_RETURN(InnerNode node, ReadInner(node_id));
    node_id = node.children[0];
    ++height;
  }
}

}  // namespace bdbms
