#ifndef BDBMS_INDEX_BTREE_BPLUS_TREE_H_
#define BDBMS_INDEX_BTREE_BPLUS_TREE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace bdbms {

// Disk-based B+-tree with variable-length byte-string keys and uint64
// payloads. The comparison baseline for the SP-GiST trie experiments
// (paper §7.1) and the node layer of the String B-tree / SBC-tree (§7.2).
//
// Duplicate keys are allowed. Deletion removes leaf entries without
// rebalancing (standard for an append-mostly research substrate).
// Keys are limited to 1 KiB so any three keys fit a page.
class BPlusTree {
 public:
  static Result<std::unique_ptr<BPlusTree>> CreateInMemory(
      size_t pool_pages = 256);

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  Status Insert(std::string_view key, uint64_t payload);

  // All payloads stored under exactly `key`.
  Result<std::vector<uint64_t>> SearchExact(std::string_view key) const;

  // Visits entries with lo <= key < hi in key order; fn returning false
  // stops the scan.
  Status ScanRange(
      std::string_view lo, std::string_view hi,
      const std::function<bool(std::string_view, uint64_t)>& fn) const;

  // Visits entries whose key starts with `prefix`.
  Status ScanPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, uint64_t)>& fn) const;

  // Removes one entry matching (key, payload); NotFound if absent.
  Status Delete(std::string_view key, uint64_t payload);

  uint64_t size() const { return size_; }
  uint64_t SizeBytes() const { return pager_->SizeBytes(); }
  const IoStats& io_stats() const { return pager_->stats(); }
  IoStats& io_stats() { return pager_->stats(); }
  // Height of the tree (leaf = 1).
  Result<int> Height() const;

 private:
  explicit BPlusTree(std::unique_ptr<Pager> pager, size_t pool_pages);

  struct LeafEntry {
    std::string key;
    uint64_t payload;
  };
  struct LeafNode {
    std::vector<LeafEntry> entries;
    PageId next = kInvalidPageId;
  };
  struct InnerNode {
    // children.size() == keys.size() + 1; subtree i holds keys
    // < keys[i] (and >= keys[i-1]).
    std::vector<std::string> keys;
    std::vector<PageId> children;
  };

  Result<LeafNode> ReadLeaf(PageId id) const;
  Result<InnerNode> ReadInner(PageId id) const;
  Result<bool> IsLeaf(PageId id) const;
  Status WriteLeaf(PageId id, const LeafNode& node);
  Status WriteInner(PageId id, const InnerNode& node);

  // Returns (separator, new right sibling) when the child split.
  struct SplitResult {
    std::string separator;
    PageId right;
  };
  Result<std::optional<SplitResult>> InsertRec(PageId node,
                                               std::string_view key,
                                               uint64_t payload);

  // Leftmost leaf whose key range may contain `key`.
  Result<PageId> DescendToLeaf(std::string_view key) const;

  static uint64_t LeafSerializedSize(const LeafNode& n);
  static uint64_t InnerSerializedSize(const InnerNode& n);

  std::unique_ptr<Pager> pager_;
  mutable std::unique_ptr<BufferPool> pool_;
  PageId root_;
  uint64_t size_ = 0;
};

}  // namespace bdbms

#endif  // BDBMS_INDEX_BTREE_BPLUS_TREE_H_
