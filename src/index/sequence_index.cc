#include "index/sequence_index.h"

#include <algorithm>
#include <optional>
#include <set>

namespace bdbms {

Result<std::unique_ptr<SequenceIndex>> SequenceIndex::Create(std::string name,
                                                             size_t column) {
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<SpGistTrie> trie,
                         SpGistTrie::Create(TrieOps::Config{}));
  return std::unique_ptr<SequenceIndex>(
      new SequenceIndex(std::move(name), column, std::move(trie)));
}

Status SequenceIndex::Insert(const Value& cell, RowId row_id) {
  if (cell.is_null()) return Status::Ok();  // NULLs are never probe-visible
  if (!cell.is_string()) {
    return Status::InvalidArgument("sequence index over a non-string value");
  }
  const std::string& text = cell.as_string();
  if (text.find('\0') != std::string::npos) {
    return Status::InvalidArgument(
        "sequence index cannot store values with embedded NUL bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  return trie_->Insert(text, row_id);
}

Status SequenceIndex::Remove(const Value& cell, RowId row_id) {
  if (cell.is_null()) return Status::Ok();
  if (!cell.is_string()) {
    return Status::InvalidArgument("sequence index over a non-string value");
  }
  std::lock_guard<std::mutex> lock(mu_);
  BDBMS_ASSIGN_OR_RETURN(
      bool removed,
      trie_->Remove(TrieOps::Exact(cell.as_string()), row_id));
  if (!removed) {
    return Status::NotFound("sequence index entry not found");
  }
  return Status::Ok();
}

Result<std::vector<RowId>> SequenceIndex::Collect(
    const TrieOps::Query& query) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RowId> rows;
  BDBMS_RETURN_IF_ERROR(
      trie_->Search(query, [&](const TrieOps::Key&, uint64_t row) {
        rows.push_back(row);
        return true;
      }));
  std::sort(rows.begin(), rows.end());
  return rows;
}

Result<std::vector<RowId>> SequenceIndex::FindPrefix(
    const std::string& prefix) const {
  return Collect(TrieOps::Prefix(prefix));
}

Result<std::vector<RowId>> SequenceIndex::FindExact(
    const std::string& text) const {
  return Collect(TrieOps::Exact(text));
}

Result<std::vector<RowId>> SequenceIndex::FindRegex(
    const RegexProgram& program) const {
  return Collect(TrieOps::Regex(&program));
}

namespace {

// Best-first walker for FindNearest: the state is the Levenshtein DP row
// of the path prefix against the target, whose minimum lower-bounds the
// distance of every key in the subtree (appending characters never
// shrinks the row minimum).
class NearestWalker {
 public:
  struct WState {
    std::string prefix;
    std::vector<int> row;
  };

  // A candidate emitted by the traversal, not yet vetted for visibility:
  // the caller checks `keep` after releasing the index mutex.
  struct Candidate {
    RowId row;
    int distance;
    std::string key;
  };

  NearestWalker(const std::string& target, size_t k,
                const std::set<RowId>& skip)
      : target_(target), k_(k), skip_(skip) {}

  WState Root() const {
    WState s;
    s.row.resize(target_.size() + 1);
    for (size_t j = 0; j <= target_.size(); ++j) {
      s.row[j] = static_cast<int>(j);
    }
    return s;
  }

  std::optional<WState> Descend(const TrieOps::Inner& inner, size_t slot,
                                const WState& state) const {
    if (inner.labels[slot] == '\0') return state;  // end-of-key: same depth
    WState next;
    next.prefix = state.prefix + inner.labels[slot];
    next.row = Extend(state.row, inner.labels[slot], next.prefix.size());
    return next;
  }

  double Bound(const WState& state) const {
    return *std::min_element(state.row.begin(), state.row.end());
  }

  std::optional<double> LeafDistance(const WState& state,
                                     const TrieOps::Key& suffix) const {
    std::vector<int> row = state.row;
    size_t depth = state.prefix.size();
    for (char c : suffix) row = Extend(row, c, ++depth);
    return static_cast<double>(row[target_.size()]);
  }

  bool Emit(const WState& state, const TrieOps::Key& suffix, uint64_t payload,
            double dist) {
    // Entries arrive in nondecreasing distance; past the k-th distance
    // nothing can join the result (ties at it still can).
    if (results_.size() >= k_ && dist > results_.back().distance) {
      return false;
    }
    if (skip_.count(payload) != 0) return true;  // known-stale entry
    results_.push_back(
        {payload, static_cast<int>(dist), state.prefix + suffix});
    return true;
  }

  std::vector<Candidate> Take() { return std::move(results_); }

 private:
  // One Levenshtein DP step: the row for prefix length `depth` from the
  // row of length depth-1, appending character c.
  std::vector<int> Extend(const std::vector<int>& prev, char c,
                          size_t depth) const {
    std::vector<int> row(target_.size() + 1);
    row[0] = static_cast<int>(depth);
    for (size_t j = 1; j <= target_.size(); ++j) {
      int sub = prev[j - 1] + (target_[j - 1] == c ? 0 : 1);
      row[j] = std::min({sub, prev[j] + 1, row[j - 1] + 1});
    }
    return row;
  }

  const std::string& target_;
  size_t k_;
  const std::set<RowId>& skip_;
  std::vector<Candidate> results_;
};

// Depth-first walker for FindAlign: the state is the Smith–Waterman DP
// row of the path prefix against the query plus the best cell seen, so
// keys sharing a trie prefix share that much of the O(n*m) work. Local
// alignment admits no sound subtree cutoff — a high-scoring match can
// start anywhere in the unseen suffix — so every subtree is visited;
// the win is the shared-prefix DP and per-leaf-group dedup of duplicate
// sequences, not pruning.
class AlignWalker {
 public:
  struct WState {
    std::vector<int> row;
    int best = 0;
  };

  AlignWalker(const std::string& query, int min_score, bool strict,
              const AlignmentParams& params)
      : query_(query), min_score_(min_score), strict_(strict),
        params_(params) {}

  WState Root() const {
    WState s;
    s.row.assign(query_.size() + 1, 0);
    return s;
  }

  std::optional<WState> Descend(const TrieOps::Inner& inner, size_t slot,
                                const WState& state) const {
    if (inner.labels[slot] == '\0') return state;
    WState next = state;
    ExtendInPlace(&next, inner.labels[slot]);
    return next;
  }

  bool Leaf(const WState& state, const TrieOps::Key& suffix,
            uint64_t payload) {
    // Duplicate sequences arrive consecutively and are scored once per
    // group. The group key must be the *values* the verdict depends on
    // (DP row, best cell, suffix) — the state's address is a loop-local
    // in SearchGuided and aliases across unrelated leaf nodes.
    if (!last_valid_ || state.best != last_best_ || suffix != last_suffix_ ||
        state.row != last_row_) {
      WState full = state;
      for (char c : suffix) ExtendInPlace(&full, c);
      last_valid_ = true;
      last_row_ = state.row;
      last_best_ = state.best;
      last_suffix_ = suffix;
      last_passed_ =
          strict_ ? full.best > min_score_ : full.best >= min_score_;
    }
    if (last_passed_) rows_.push_back(payload);
    return true;
  }

  std::vector<RowId> Take() { return std::move(rows_); }

 private:
  void ExtendInPlace(WState* s, char c) const {
    int diag = s->row[0];
    for (size_t j = 1; j <= query_.size(); ++j) {
      int score = diag + (query_[j - 1] == c ? params_.match
                                             : params_.mismatch);
      diag = s->row[j];
      score = std::max({0, score, s->row[j] + params_.gap,
                        s->row[j - 1] + params_.gap});
      s->row[j] = score;
      s->best = std::max(s->best, score);
    }
  }

  const std::string& query_;
  int min_score_;
  bool strict_;
  AlignmentParams params_;
  bool last_valid_ = false;
  std::vector<int> last_row_;
  int last_best_ = 0;
  TrieOps::Key last_suffix_;
  bool last_passed_ = false;
  std::vector<RowId> rows_;
};

}  // namespace

Result<std::vector<SequenceIndex::Neighbor>> SequenceIndex::FindNearest(
    const std::string& target, size_t k,
    const std::function<bool(RowId, const std::string&)>& keep) const {
  if (k == 0) return std::vector<Neighbor>{};
  // `keep` consults the table (MVCC visibility + stored-cell equality),
  // and every DML and index-build path takes the table lock *before* this
  // index's mutex. Invoking it mid-traversal under mu_ would invert that
  // order, so candidates are gathered under the lock and vetted after it
  // is released; stale entries are blacklisted and the traversal restarts
  // without them, so they never occupy one of the k slots. Each restart
  // blacklists at least one more row, so the loop terminates.
  std::set<RowId> stale;
  for (;;) {
    std::vector<NearestWalker::Candidate> candidates;
    {
      std::lock_guard<std::mutex> lock(mu_);
      NearestWalker walker(target, k, stale);
      BDBMS_RETURN_IF_ERROR(trie_->SearchOrdered(walker));
      candidates = walker.Take();
    }
    std::vector<Neighbor> out;
    out.reserve(candidates.size());
    size_t known_stale = stale.size();
    for (const NearestWalker::Candidate& c : candidates) {
      if (keep(c.row, c.key)) {
        out.push_back({c.row, c.distance});
      } else {
        stale.insert(c.row);
      }
    }
    if (stale.size() != known_stale) continue;
    std::stable_sort(out.begin(), out.end(),
                     [](const Neighbor& a, const Neighbor& b) {
                       return a.distance != b.distance
                                  ? a.distance < b.distance
                                  : a.row < b.row;
                     });
    return out;
  }
}

Result<std::vector<RowId>> SequenceIndex::FindAlign(
    const std::string& query, int min_score, bool strict,
    const AlignmentParams& params) const {
  std::lock_guard<std::mutex> lock(mu_);
  AlignWalker walker(query, min_score, strict, params);
  BDBMS_RETURN_IF_ERROR(trie_->SearchGuided(walker));
  std::vector<RowId> rows = walker.Take();
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace bdbms
