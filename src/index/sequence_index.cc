#include "index/sequence_index.h"

#include <algorithm>

namespace bdbms {

Result<std::unique_ptr<SequenceIndex>> SequenceIndex::Create(std::string name,
                                                             size_t column) {
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<SpGistTrie> trie,
                         SpGistTrie::Create(TrieOps::Config{}));
  return std::unique_ptr<SequenceIndex>(
      new SequenceIndex(std::move(name), column, std::move(trie)));
}

Status SequenceIndex::Insert(const Value& cell, RowId row_id) {
  if (cell.is_null()) return Status::Ok();  // NULLs are never probe-visible
  if (!cell.is_string()) {
    return Status::InvalidArgument("sequence index over a non-string value");
  }
  const std::string& text = cell.as_string();
  if (text.find('\0') != std::string::npos) {
    return Status::InvalidArgument(
        "sequence index cannot store values with embedded NUL bytes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  return trie_->Insert(text, row_id);
}

Status SequenceIndex::Remove(const Value& cell, RowId row_id) {
  if (cell.is_null()) return Status::Ok();
  if (!cell.is_string()) {
    return Status::InvalidArgument("sequence index over a non-string value");
  }
  std::lock_guard<std::mutex> lock(mu_);
  BDBMS_ASSIGN_OR_RETURN(
      bool removed,
      trie_->Remove(TrieOps::Exact(cell.as_string()), row_id));
  if (!removed) {
    return Status::NotFound("sequence index entry not found");
  }
  return Status::Ok();
}

Result<std::vector<RowId>> SequenceIndex::Collect(
    const TrieOps::Query& query) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RowId> rows;
  BDBMS_RETURN_IF_ERROR(
      trie_->Search(query, [&](const TrieOps::Key&, uint64_t row) {
        rows.push_back(row);
        return true;
      }));
  std::sort(rows.begin(), rows.end());
  return rows;
}

Result<std::vector<RowId>> SequenceIndex::FindPrefix(
    const std::string& prefix) const {
  return Collect(TrieOps::Prefix(prefix));
}

Result<std::vector<RowId>> SequenceIndex::FindExact(
    const std::string& text) const {
  return Collect(TrieOps::Exact(text));
}

}  // namespace bdbms
