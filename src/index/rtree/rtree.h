#ifndef BDBMS_INDEX_RTREE_RTREE_H_
#define BDBMS_INDEX_RTREE_RTREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace bdbms {

// Axis-aligned rectangle (degenerate rectangles represent points).
struct Rect {
  double x1 = 0, y1 = 0, x2 = 0, y2 = 0;

  static Rect Point(double x, double y) { return {x, y, x, y}; }

  bool Intersects(const Rect& o) const {
    return x1 <= o.x2 && o.x1 <= x2 && y1 <= o.y2 && o.y1 <= y2;
  }
  bool Contains(const Rect& o) const {
    return x1 <= o.x1 && o.x2 <= x2 && y1 <= o.y1 && o.y2 <= y2;
  }
  double Area() const { return (x2 - x1) * (y2 - y1); }
  Rect Union(const Rect& o) const {
    return {std::min(x1, o.x1), std::min(y1, o.y1), std::max(x2, o.x2),
            std::max(y2, o.y2)};
  }
  // Squared distance from point (px, py) to this rectangle (0 inside).
  double MinDist2(double px, double py) const;
};

// Disk-based R-tree (Guttman, quadratic split) over 2-D rectangles with
// uint64 payloads. Baseline access method for the SP-GiST kd-tree /
// quadtree experiments (paper §7.1) and the stand-in for the SBC-tree's
// 3-sided range structure (§7.2, as in the authors' own prototype).
class RTree {
 public:
  static Result<std::unique_ptr<RTree>> CreateInMemory(size_t pool_pages = 256);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  Status Insert(const Rect& rect, uint64_t payload);

  // Visits every entry whose rectangle intersects `window`; fn returning
  // false stops the search.
  Status SearchWindow(
      const Rect& window,
      const std::function<bool(const Rect&, uint64_t)>& fn) const;

  // The k nearest entries to (x, y) by rectangle distance, closest first.
  Result<std::vector<std::pair<uint64_t, double>>> SearchKnn(double x,
                                                             double y,
                                                             size_t k) const;

  uint64_t size() const { return size_; }
  uint64_t SizeBytes() const { return pager_->SizeBytes(); }
  const IoStats& io_stats() const { return pager_->stats(); }
  IoStats& io_stats() { return pager_->stats(); }

 private:
  explicit RTree(std::unique_ptr<Pager> pager, size_t pool_pages);

  struct Entry {
    Rect rect;
    uint64_t payload;  // leaf: user payload, inner: child PageId
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  Result<Node> ReadNode(PageId id) const;
  Status WriteNode(PageId id, const Node& node);

  struct SplitResult {
    Rect left_rect, right_rect;
    PageId right;
  };
  Result<std::optional<SplitResult>> InsertRec(PageId node_id,
                                               const Rect& rect,
                                               uint64_t payload,
                                               Rect* node_rect);

  // Guttman's quadratic split of an overfull entry set.
  static void QuadraticSplit(std::vector<Entry>* all, std::vector<Entry>* left,
                             std::vector<Entry>* right);
  static Rect BoundingRect(const std::vector<Entry>& entries);

  std::unique_ptr<Pager> pager_;
  mutable std::unique_ptr<BufferPool> pool_;
  PageId root_;
  uint64_t size_ = 0;
};

}  // namespace bdbms

#endif  // BDBMS_INDEX_RTREE_RTREE_H_
