#include "index/rtree/rtree.h"

#include <algorithm>
#include <cstring>
#include <cmath>
#include <queue>

namespace bdbms {

// Page layout:
//   [0] uint8 node type (30 = leaf, 31 = inner)
//   [2] uint16 entry count
//   [8] entries: 4 doubles (rect) + uint64 payload/child = 40 bytes each
namespace {

constexpr uint8_t kLeafType = 30;
constexpr uint8_t kInnerType = 31;
constexpr uint32_t kEntrySize = 40;
// Fan-out kept moderate so trees have realistic depth at bench scale.
constexpr size_t kMaxEntries = 50;

}  // namespace

double Rect::MinDist2(double px, double py) const {
  double dx = px < x1 ? x1 - px : (px > x2 ? px - x2 : 0);
  double dy = py < y1 ? y1 - py : (py > y2 ? py - y2 : 0);
  return dx * dx + dy * dy;
}

RTree::RTree(std::unique_ptr<Pager> pager, size_t pool_pages)
    : pager_(std::move(pager)),
      pool_(std::make_unique<BufferPool>(pager_.get(), pool_pages)) {}

Result<std::unique_ptr<RTree>> RTree::CreateInMemory(size_t pool_pages) {
  auto tree =
      std::unique_ptr<RTree>(new RTree(Pager::OpenInMemory(), pool_pages));
  BDBMS_ASSIGN_OR_RETURN(PageHandle root, tree->pool_->New());
  tree->root_ = root.id();
  root.page()->WriteAt<uint8_t>(0, kLeafType);
  root.page()->WriteAt<uint16_t>(2, 0);
  root.MarkDirty();
  return tree;
}

Result<RTree::Node> RTree::ReadNode(PageId id) const {
  BDBMS_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  const Page& p = *h.page();
  uint8_t type = p.ReadAt<uint8_t>(0);
  if (type != kLeafType && type != kInnerType) {
    return Status::Corruption("not an r-tree node");
  }
  Node node;
  node.leaf = type == kLeafType;
  uint16_t count = p.ReadAt<uint16_t>(2);
  uint32_t off = 8;
  node.entries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    Entry e;
    e.rect.x1 = p.ReadAt<double>(off);
    e.rect.y1 = p.ReadAt<double>(off + 8);
    e.rect.x2 = p.ReadAt<double>(off + 16);
    e.rect.y2 = p.ReadAt<double>(off + 24);
    e.payload = p.ReadAt<uint64_t>(off + 32);
    off += kEntrySize;
    node.entries.push_back(e);
  }
  return node;
}

Status RTree::WriteNode(PageId id, const Node& node) {
  BDBMS_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  Page* p = h.page();
  p->Zero();
  p->WriteAt<uint8_t>(0, node.leaf ? kLeafType : kInnerType);
  p->WriteAt<uint16_t>(2, static_cast<uint16_t>(node.entries.size()));
  uint32_t off = 8;
  for (const Entry& e : node.entries) {
    p->WriteAt<double>(off, e.rect.x1);
    p->WriteAt<double>(off + 8, e.rect.y1);
    p->WriteAt<double>(off + 16, e.rect.x2);
    p->WriteAt<double>(off + 24, e.rect.y2);
    p->WriteAt<uint64_t>(off + 32, e.payload);
    off += kEntrySize;
  }
  h.MarkDirty();
  return Status::Ok();
}

Rect RTree::BoundingRect(const std::vector<Entry>& entries) {
  Rect r = entries.front().rect;
  for (const Entry& e : entries) r = r.Union(e.rect);
  return r;
}

void RTree::QuadraticSplit(std::vector<Entry>* all, std::vector<Entry>* left,
                           std::vector<Entry>* right) {
  // Pick the pair wasting the most area as seeds.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1;
  for (size_t i = 0; i < all->size(); ++i) {
    for (size_t j = i + 1; j < all->size(); ++j) {
      double waste = (*all)[i].rect.Union((*all)[j].rect).Area() -
                     (*all)[i].rect.Area() - (*all)[j].rect.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  left->push_back((*all)[seed_a]);
  right->push_back((*all)[seed_b]);
  Rect left_rect = (*all)[seed_a].rect;
  Rect right_rect = (*all)[seed_b].rect;
  size_t min_fill = kMaxEntries / 3;
  std::vector<Entry> rest;
  for (size_t i = 0; i < all->size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back((*all)[i]);
  }
  for (size_t idx = 0; idx < rest.size(); ++idx) {
    const Entry& e = rest[idx];
    // Force balance when one side needs every remaining entry to reach
    // the minimum fill.
    size_t remaining = rest.size() - idx;
    if (left->size() + remaining <= min_fill) {
      left->push_back(e);
      left_rect = left_rect.Union(e.rect);
      continue;
    }
    if (right->size() + remaining <= min_fill) {
      right->push_back(e);
      right_rect = right_rect.Union(e.rect);
      continue;
    }
    double grow_left = left_rect.Union(e.rect).Area() - left_rect.Area();
    double grow_right = right_rect.Union(e.rect).Area() - right_rect.Area();
    if (grow_left < grow_right ||
        (grow_left == grow_right && left->size() <= right->size())) {
      left->push_back(e);
      left_rect = left_rect.Union(e.rect);
    } else {
      right->push_back(e);
      right_rect = right_rect.Union(e.rect);
    }
  }
}

Result<std::optional<RTree::SplitResult>> RTree::InsertRec(PageId node_id,
                                                           const Rect& rect,
                                                           uint64_t payload,
                                                           Rect* node_rect) {
  BDBMS_ASSIGN_OR_RETURN(Node node, ReadNode(node_id));
  if (node.leaf) {
    node.entries.push_back({rect, payload});
  } else {
    // ChooseSubtree: least enlargement, ties by smallest area.
    size_t best = 0;
    double best_grow = 1e300, best_area = 1e300;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      double area = node.entries[i].rect.Area();
      double grow = node.entries[i].rect.Union(rect).Area() - area;
      if (grow < best_grow || (grow == best_grow && area < best_area)) {
        best = i;
        best_grow = grow;
        best_area = area;
      }
    }
    Rect child_rect = node.entries[best].rect;
    BDBMS_ASSIGN_OR_RETURN(
        std::optional<SplitResult> split,
        InsertRec(static_cast<PageId>(node.entries[best].payload), rect,
                  payload, &child_rect));
    node.entries[best].rect = child_rect;
    if (split.has_value()) {
      // The child wrote its new sibling already; record both halves here.
      node.entries[best].rect = split->left_rect;
      node.entries.push_back({split->right_rect, split->right});
    }
  }

  if (node.entries.size() <= kMaxEntries) {
    BDBMS_RETURN_IF_ERROR(WriteNode(node_id, node));
    *node_rect = BoundingRect(node.entries);
    return std::optional<SplitResult>();
  }

  // Overflow: quadratic split.
  std::vector<Entry> left_entries, right_entries;
  QuadraticSplit(&node.entries, &left_entries, &right_entries);
  Node right;
  right.leaf = node.leaf;
  right.entries = std::move(right_entries);
  node.entries = std::move(left_entries);
  BDBMS_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  PageId right_id = rh.id();
  rh.Release();
  BDBMS_RETURN_IF_ERROR(WriteNode(right_id, right));
  BDBMS_RETURN_IF_ERROR(WriteNode(node_id, node));
  *node_rect = BoundingRect(node.entries);
  return std::optional<SplitResult>(
      SplitResult{*node_rect, BoundingRect(right.entries), right_id});
}

Status RTree::Insert(const Rect& rect, uint64_t payload) {
  Rect root_rect;
  BDBMS_ASSIGN_OR_RETURN(std::optional<SplitResult> split,
                         InsertRec(root_, rect, payload, &root_rect));
  if (split.has_value()) {
    Node new_root;
    new_root.leaf = false;
    new_root.entries.push_back({split->left_rect, root_});
    new_root.entries.push_back({split->right_rect, split->right});
    BDBMS_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    PageId new_root_id = rh.id();
    rh.Release();
    BDBMS_RETURN_IF_ERROR(WriteNode(new_root_id, new_root));
    root_ = new_root_id;
  }
  ++size_;
  return Status::Ok();
}

Status RTree::SearchWindow(
    const Rect& window,
    const std::function<bool(const Rect&, uint64_t)>& fn) const {
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    BDBMS_ASSIGN_OR_RETURN(Node node, ReadNode(id));
    for (const Entry& e : node.entries) {
      if (!e.rect.Intersects(window)) continue;
      if (node.leaf) {
        if (!fn(e.rect, e.payload)) return Status::Ok();
      } else {
        stack.push_back(static_cast<PageId>(e.payload));
      }
    }
  }
  return Status::Ok();
}

Result<std::vector<std::pair<uint64_t, double>>> RTree::SearchKnn(
    double x, double y, size_t k) const {
  struct QueueItem {
    double dist2;
    bool is_node;
    PageId node;
    uint64_t payload;
    bool operator>(const QueueItem& o) const { return dist2 > o.dist2; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push({0.0, true, root_, 0});
  std::vector<std::pair<uint64_t, double>> out;
  while (!pq.empty() && out.size() < k) {
    QueueItem item = pq.top();
    pq.pop();
    if (!item.is_node) {
      out.emplace_back(item.payload, std::sqrt(item.dist2));
      continue;
    }
    BDBMS_ASSIGN_OR_RETURN(Node node, ReadNode(item.node));
    for (const Entry& e : node.entries) {
      double d2 = e.rect.MinDist2(x, y);
      if (node.leaf) {
        pq.push({d2, false, 0, e.payload});
      } else {
        pq.push({d2, true, static_cast<PageId>(e.payload), 0});
      }
    }
  }
  return out;
}

}  // namespace bdbms
