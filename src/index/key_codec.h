#ifndef BDBMS_INDEX_KEY_CODEC_H_
#define BDBMS_INDEX_KEY_CODEC_H_

#include <string>

#include "common/value.h"

namespace bdbms {

// Order-preserving byte encoding of cell values for B+-tree index keys.
//
// The B+-tree compares keys as raw byte strings, so the codec must map the
// engine's value order onto memcmp order. Keys are laid out as a one-byte
// type-rank tag (NULL < numeric < string, matching Value::Compare) followed
// by a rank-specific payload:
//   * INT     — big-endian two's complement with the sign bit flipped
//   * DOUBLE  — big-endian IEEE bits; negatives wholly inverted, positives
//               sign-flipped (the classic total-order trick)
//   * TEXT / SEQUENCE — the raw bytes (memcmp == lexicographic order)
//
// A secondary index only ever stores keys of its column's declared type
// (rows are coerced on write), so INT and DOUBLE sharing the numeric rank
// tag never mix inside one tree; probes must be coerced to the column type
// before encoding.
std::string EncodeIndexKey(const Value& v);

// Smallest key of non-null rank — the lower fence that excludes NULLs
// (SQL comparisons never match NULL, so scans start above them).
std::string IndexKeyLowestNonNull();

// Upper fence above every encodable key.
std::string IndexKeyUpperFence();

// The least key strictly greater than `key` in memcmp order. Because every
// encoded key is a discrete byte string, successor(enc(v)) sits between
// enc(v) and the encoding of the next distinct value, which turns
// inclusive/exclusive bounds into the half-open [lo, hi) ranges the B+-tree
// scan takes: inclusive lower -> enc(v), exclusive lower -> successor,
// inclusive upper -> successor, exclusive upper -> enc(v).
std::string IndexKeySuccessor(const std::string& key);

}  // namespace bdbms

#endif  // BDBMS_INDEX_KEY_CODEC_H_
