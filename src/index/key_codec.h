#ifndef BDBMS_INDEX_KEY_CODEC_H_
#define BDBMS_INDEX_KEY_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace bdbms {

// Order-preserving byte encoding of cell values for B+-tree index keys.
//
// The B+-tree compares keys as raw byte strings, so the codec must map the
// engine's value order onto memcmp order — including for *composite*
// (multi-column) keys, which are the concatenation of the per-component
// encodings. Each component is a one-byte type-rank tag (NULL < numeric <
// string, matching Value::Compare) followed by a rank-specific payload:
//   * NULL    — the tag alone
//   * INT     — big-endian two's complement with the sign bit flipped
//   * DOUBLE  — big-endian IEEE bits; negatives wholly inverted, positives
//               sign-flipped (the classic total-order trick)
//   * TEXT / SEQUENCE — the bytes with 0x00 escaped as 0x00 0xFF, closed by
//               a 0x00 0x01 terminator. The escape keeps the terminator
//               unambiguous, and the terminator makes every component
//               encoding prefix-free, so concatenating components preserves
//               lexicographic row order ("ab" < "abc" because the
//               terminator byte 0x00 sorts below every continuation).
//
// Component encodings are self-delimiting, so a composite key can be
// decoded back into its column values given the declared column types
// (INT and DOUBLE share the numeric rank tag; a secondary index only ever
// stores keys of its columns' declared types because rows are coerced on
// write, so the schema disambiguates). That reversibility is what makes
// index-only scans possible.
void AppendIndexKey(std::string* out, const Value& v);

// Single-component convenience wrapper around AppendIndexKey.
std::string EncodeIndexKey(const Value& v);

// Concatenation of the component encodings of `values`.
std::string EncodeCompositeKey(const std::vector<Value>& values);

// Inverse of EncodeCompositeKey: decodes one value per entry of `types`
// (the declared column types, used to pick INT vs DOUBLE under the shared
// numeric rank). Fails if the key does not parse or has trailing bytes.
Result<std::vector<Value>> DecodeCompositeKey(
    std::string_view key, const std::vector<DataType>& types);

// Appends the *unterminated* string-component prefix for `prefix` (rank
// tag + escaped bytes, no terminator): every string component whose value
// starts with `prefix` encodes to a byte string starting with exactly
// these bytes — the probe prefix of a LIKE 'p%' ScanPrefix range.
void AppendStringKeyPrefix(std::string* out, std::string_view prefix);

// Smallest key of non-null rank — the lower fence that excludes NULLs
// (SQL comparisons never match NULL, so scans start above them).
std::string IndexKeyLowestNonNull();

// Upper fence above every encodable key (single- or multi-component).
std::string IndexKeyUpperFence();

// The least byte string strictly greater than `key` in memcmp order.
// Only meaningful when `key` is a WHOLE stored key: probe bounds on a
// component of a composite key must use IndexKeyPrefixUpperBound instead
// — the appended 0x00 is exactly the byte a NULL continuation encodes
// as, so successor(component) would miss rows whose next column is NULL.
std::string IndexKeySuccessor(const std::string& key);

// The least key strictly greater than every key that starts with `prefix`
// (byte-increment of the last non-0xFF byte); the global upper fence when
// no such key exists. Upper bound of prefix-probe ranges.
std::string IndexKeyPrefixUpperBound(std::string prefix);

}  // namespace bdbms

#endif  // BDBMS_INDEX_KEY_CODEC_H_
