#ifndef BDBMS_INDEX_SECONDARY_INDEX_H_
#define BDBMS_INDEX_SECONDARY_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "index/btree/bplus_tree.h"
#include "table/table.h"

namespace bdbms {

// One bound of a key range probe. `inclusive` controls whether the bound
// value itself qualifies.
struct IndexBound {
  Value value;
  bool inclusive = true;
};

// A secondary index over one column of a user table: a disk-paged B+-tree
// mapping the order-preserving key encoding of the cell value to the RowId.
// Maintained by Table on every INSERT/UPDATE/DELETE; consulted by the
// planner to turn WHERE equality/range predicates into IndexScan nodes.
//
// NULL cells are indexed (under the null rank tag) so maintenance is
// uniform, but probes never return them: SQL comparisons are never true on
// NULL, and both probe entry points fence NULLs out.
class SecondaryIndex {
 public:
  static Result<std::unique_ptr<SecondaryIndex>> Create(std::string name,
                                                        size_t column);

  SecondaryIndex(const SecondaryIndex&) = delete;
  SecondaryIndex& operator=(const SecondaryIndex&) = delete;

  const std::string& name() const { return name_; }
  size_t column() const { return column_; }
  uint64_t entry_count() const { return tree_->size(); }

  // --- maintenance (Table calls these with the cell's stored value) -------
  Status Insert(const Value& cell, RowId row);
  Status Remove(const Value& cell, RowId row);

  // --- probes (planner/IndexScan) -----------------------------------------
  // RowIds whose cell equals `probe`, ascending.
  Result<std::vector<RowId>> FindEqual(const Value& probe) const;

  // RowIds whose cell lies in the (half-)bounded range, ascending. A
  // missing bound is unbounded on that side (but always above NULLs).
  Result<std::vector<RowId>> FindRange(const std::optional<IndexBound>& lo,
                                       const std::optional<IndexBound>& hi)
      const;

 private:
  SecondaryIndex(std::string name, size_t column,
                 std::unique_ptr<BPlusTree> tree)
      : name_(std::move(name)), column_(column), tree_(std::move(tree)) {}

  std::string name_;
  size_t column_;
  std::unique_ptr<BPlusTree> tree_;
};

}  // namespace bdbms

#endif  // BDBMS_INDEX_SECONDARY_INDEX_H_
