#ifndef BDBMS_INDEX_SECONDARY_INDEX_H_
#define BDBMS_INDEX_SECONDARY_INDEX_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "index/btree/bplus_tree.h"
#include "table/table.h"

namespace bdbms {

// One bound of a key range probe. `inclusive` controls whether the bound
// value itself qualifies.
struct IndexBound {
  Value value;
  bool inclusive = true;
};

// A probe against a (possibly composite) secondary index: equality on the
// leading `eq.size()` key columns, then at most one extra constraint on
// the next key column —
//   * a (half-)bounded range (`lo`/`hi`), or
//   * a string-prefix constraint (`like_prefix`, from LIKE 'p%').
// Everything empty is a full-index scan (the covering-scan access path).
struct IndexProbe {
  std::vector<Value> eq;
  std::optional<IndexBound> lo;
  std::optional<IndexBound> hi;
  std::optional<std::string> like_prefix;
};

// A secondary index over one or more columns of a user table: a disk-paged
// B+-tree mapping the order-preserving composite key encoding of the cell
// values (key_codec.h) to the RowId. Maintained by Table on every
// INSERT/UPDATE/DELETE (and therefore by approval rollbacks, which run
// through the same Table mutations); consulted by the planner to turn
// WHERE equality/range/LIKE-prefix predicates into IndexScan,
// IndexOnlyScan and ScanPrefix probes.
//
// NULL cells are indexed (under the null rank tag) so maintenance is
// uniform, but range probes never return them: SQL comparisons are never
// true on NULL, and the range entry points fence NULLs out. Leading-prefix
// equality probes with fewer than all columns do include rows whose
// *unconstrained* trailing columns are NULL, since no predicate touches
// them.
//
// Internally synchronized: the B+-tree's buffer pool mutates its LRU state
// even on reads, so concurrent snapshot probes and a writer's maintenance
// must serialize on the index's own mutex.
class SecondaryIndex {
 public:
  static Result<std::unique_ptr<SecondaryIndex>> Create(
      std::string name, std::vector<size_t> columns);

  SecondaryIndex(const SecondaryIndex&) = delete;
  SecondaryIndex& operator=(const SecondaryIndex&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<size_t>& columns() const { return columns_; }
  // Leading key column (the whole key of a single-column index).
  size_t column() const { return columns_.front(); }
  uint64_t entry_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_->size();
  }

  // --- maintenance (Table calls these with the full stored row) -----------
  Status Insert(const Row& row, RowId row_id);
  Status Remove(const Row& row, RowId row_id);

  // --- probes (planner/IndexScan/IndexOnlyScan) ---------------------------
  // RowIds matching `probe`, ascending.
  Result<std::vector<RowId>> Find(const IndexProbe& probe) const;

  // Visits (encoded composite key, RowId) entries matching `probe` in key
  // order; `fn` returning false stops the scan. The key bytes decode back
  // into the indexed column values (DecodeCompositeKey), which is how
  // index-only scans answer queries without touching the base table.
  Status ScanProbe(const IndexProbe& probe,
                   const std::function<bool(std::string_view, RowId)>& fn)
      const;

  // Single-column convenience wrappers (equality / folded range).
  Result<std::vector<RowId>> FindEqual(const Value& probe) const;
  Result<std::vector<RowId>> FindRange(const std::optional<IndexBound>& lo,
                                       const std::optional<IndexBound>& hi)
      const;

 private:
  SecondaryIndex(std::string name, std::vector<size_t> columns,
                 std::unique_ptr<BPlusTree> tree)
      : name_(std::move(name)),
        columns_(std::move(columns)),
        tree_(std::move(tree)) {}

  // Composite key of `row`'s indexed cells.
  std::string KeyOf(const Row& row) const;

  std::string name_;
  std::vector<size_t> columns_;
  std::unique_ptr<BPlusTree> tree_;
  mutable std::mutex mu_;
};

}  // namespace bdbms

#endif  // BDBMS_INDEX_SECONDARY_INDEX_H_
