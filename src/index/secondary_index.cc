#include "index/secondary_index.h"

#include <algorithm>

#include "index/key_codec.h"

namespace bdbms {

Result<std::unique_ptr<SecondaryIndex>> SecondaryIndex::Create(
    std::string name, size_t column) {
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<BPlusTree> tree,
                         BPlusTree::CreateInMemory());
  return std::unique_ptr<SecondaryIndex>(
      new SecondaryIndex(std::move(name), column, std::move(tree)));
}

Status SecondaryIndex::Insert(const Value& cell, RowId row) {
  return tree_->Insert(EncodeIndexKey(cell), row);
}

Status SecondaryIndex::Remove(const Value& cell, RowId row) {
  return tree_->Delete(EncodeIndexKey(cell), row);
}

Result<std::vector<RowId>> SecondaryIndex::FindEqual(
    const Value& probe) const {
  if (probe.is_null()) return std::vector<RowId>{};
  BDBMS_ASSIGN_OR_RETURN(std::vector<RowId> rows,
                         tree_->SearchExact(EncodeIndexKey(probe)));
  std::sort(rows.begin(), rows.end());
  return rows;
}

Result<std::vector<RowId>> SecondaryIndex::FindRange(
    const std::optional<IndexBound>& lo,
    const std::optional<IndexBound>& hi) const {
  std::string lo_key = IndexKeyLowestNonNull();
  if (lo.has_value()) {
    lo_key = EncodeIndexKey(lo->value);
    if (!lo->inclusive) lo_key = IndexKeySuccessor(lo_key);
  }
  std::string hi_key = IndexKeyUpperFence();
  if (hi.has_value()) {
    hi_key = EncodeIndexKey(hi->value);
    if (hi->inclusive) hi_key = IndexKeySuccessor(hi_key);
  }
  std::vector<RowId> rows;
  BDBMS_RETURN_IF_ERROR(
      tree_->ScanRange(lo_key, hi_key, [&](std::string_view, uint64_t row) {
        rows.push_back(row);
        return true;
      }));
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace bdbms
