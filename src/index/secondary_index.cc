#include "index/secondary_index.h"

#include <algorithm>

#include "index/key_codec.h"

namespace bdbms {

Result<std::unique_ptr<SecondaryIndex>> SecondaryIndex::Create(
    std::string name, std::vector<size_t> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<BPlusTree> tree,
                         BPlusTree::CreateInMemory());
  return std::unique_ptr<SecondaryIndex>(new SecondaryIndex(
      std::move(name), std::move(columns), std::move(tree)));
}

std::string SecondaryIndex::KeyOf(const Row& row) const {
  std::string key;
  for (size_t c : columns_) AppendIndexKey(&key, row[c]);
  return key;
}

Status SecondaryIndex::Insert(const Row& row, RowId row_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return tree_->Insert(KeyOf(row), row_id);
}

Status SecondaryIndex::Remove(const Row& row, RowId row_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return tree_->Delete(KeyOf(row), row_id);
}

Status SecondaryIndex::ScanProbe(
    const IndexProbe& probe,
    const std::function<bool(std::string_view, RowId)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Equality with NULL is never true; such probes match nothing.
  for (const Value& v : probe.eq) {
    if (v.is_null()) return Status::Ok();
  }
  if ((probe.lo.has_value() && probe.lo->value.is_null()) ||
      (probe.hi.has_value() && probe.hi->value.is_null())) {
    return Status::Ok();
  }
  std::string prefix = EncodeCompositeKey(probe.eq);
  std::string lo_key, hi_key;
  if (probe.like_prefix.has_value()) {
    lo_key = prefix;
    AppendStringKeyPrefix(&lo_key, *probe.like_prefix);
    hi_key = IndexKeyPrefixUpperBound(lo_key);
  } else if (probe.lo.has_value() || probe.hi.has_value()) {
    // A range on the column after the equality prefix. An inclusive side
    // must take every key whose *component* equals the bound, whatever
    // the later components hold (a successor byte would miss a NULL
    // continuation, which encodes as the very byte the successor appends)
    // — hence the prefix-upper-bound of the component encoding. Absent
    // bounds fall to the fences: above NULLs on the low side (SQL
    // comparisons never match NULL), past every key with this prefix on
    // the high side.
    if (probe.lo.has_value()) {
      lo_key = prefix + EncodeIndexKey(probe.lo->value);
      if (!probe.lo->inclusive) lo_key = IndexKeyPrefixUpperBound(lo_key);
    } else {
      lo_key = prefix + IndexKeyLowestNonNull();
    }
    if (probe.hi.has_value()) {
      hi_key = prefix + EncodeIndexKey(probe.hi->value);
      if (probe.hi->inclusive) hi_key = IndexKeyPrefixUpperBound(hi_key);
    } else {
      hi_key = IndexKeyPrefixUpperBound(prefix);
    }
  } else {
    // Pure prefix equality (or, with no equalities at all, a full-index
    // scan). Unconstrained trailing columns may hold anything, NULLs
    // included, so no low fence applies beyond the prefix itself.
    lo_key = prefix;
    hi_key = IndexKeyPrefixUpperBound(prefix);
  }
  return tree_->ScanRange(lo_key, hi_key, fn);
}

Result<std::vector<RowId>> SecondaryIndex::Find(
    const IndexProbe& probe) const {
  std::vector<RowId> rows;
  BDBMS_RETURN_IF_ERROR(
      ScanProbe(probe, [&](std::string_view, RowId row) {
        rows.push_back(row);
        return true;
      }));
  std::sort(rows.begin(), rows.end());
  return rows;
}

Result<std::vector<RowId>> SecondaryIndex::FindEqual(
    const Value& probe) const {
  if (probe.is_null()) return std::vector<RowId>{};
  IndexProbe p;
  p.eq.push_back(probe);
  return Find(p);
}

Result<std::vector<RowId>> SecondaryIndex::FindRange(
    const std::optional<IndexBound>& lo,
    const std::optional<IndexBound>& hi) const {
  if (!lo.has_value() && !hi.has_value()) {
    // FindRange models `col <op> ...`, so it excludes NULLs even when
    // unbounded on both sides (unlike a prefix-equality Find).
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<RowId> rows;
    BDBMS_RETURN_IF_ERROR(tree_->ScanRange(
        IndexKeyLowestNonNull(), IndexKeyUpperFence(),
        [&](std::string_view, uint64_t row) {
          rows.push_back(row);
          return true;
        }));
    std::sort(rows.begin(), rows.end());
    return rows;
  }
  IndexProbe p;
  p.lo = lo;
  p.hi = hi;
  return Find(p);
}

}  // namespace bdbms
