#ifndef BDBMS_INDEX_SPGIST_QUAD_OPS_H_
#define BDBMS_INDEX_SPGIST_QUAD_OPS_H_

#include <cstring>

#include "index/spgist/kd_ops.h"  // SpPoint, SpatialQuery
#include "index/spgist/spgist.h"

namespace bdbms {

// SP-GiST operator class instantiating a disk-based PR quadtree (a
// point-quadtree variant of paper §7.1): every inner node splits its
// region at the midpoint into four quadrants, so the partitioning is
// purely space- (not data-) driven. Quadrant numbering:
//   0 = SW (x <= cx, y <= cy), 1 = SE, 2 = NW, 3 = NE.
struct QuadOps {
  using Key = SpPoint;
  using Query = SpatialQuery;

  struct Config {
    Rect bounds{0, 0, 1, 1};  // world box; inserts must fall inside
  };

  struct State {
    Rect box;

    double cx() const { return (box.x1 + box.x2) / 2; }
    double cy() const { return (box.y1 + box.y2) / 2; }
    Rect Quadrant(size_t q) const {
      double mx = cx(), my = cy();
      switch (q) {
        case 0: return {box.x1, box.y1, mx, my};
        case 1: return {mx, box.y1, box.x2, my};
        case 2: return {box.x1, my, mx, box.y2};
        default: return {mx, my, box.x2, box.y2};
      }
    }
  };

  struct Inner {
    uint64_t kids[4] = {kSpGistNullNode, kSpGistNullNode, kSpGistNullNode,
                        kSpGistNullNode};

    size_t NumChildren() const { return 4; }
    uint64_t child(size_t i) const { return kids[i]; }
    void set_child(size_t i, uint64_t v) { kids[i] = v; }
  };

  static State RootState(const Config& config) { return {config.bounds}; }

  static size_t QuadrantOf(const State& state, const Key& p) {
    return (p.x > state.cx() ? 1u : 0u) + (p.y > state.cy() ? 2u : 0u);
  }

  struct ChooseResult {
    size_t slot;
    bool modified;
  };

  static ChooseResult Choose(Inner*, Key* key, const State& state) {
    return {QuadrantOf(state, *key), false};
  }

  static State Descend(const Inner&, size_t slot, const State& state) {
    return {state.Quadrant(slot)};
  }

  static void PickSplit(const State& state,
                        std::vector<std::pair<Key, uint64_t>>* entries,
                        Inner*,
                        std::vector<std::vector<std::pair<Key, uint64_t>>>*
                            partitions) {
    partitions->assign(4, {});
    for (auto& [p, payload] : *entries) {
      (*partitions)[QuadrantOf(state, p)].emplace_back(p, payload);
    }
  }

  static void SearchChildren(const Inner&, const Query& query,
                             const State& state, std::vector<size_t>* out) {
    if (query.kind == SpatialQueryKind::kPointEq) {
      out->push_back(QuadrantOf(state, query.point));
      return;
    }
    for (size_t q = 0; q < 4; ++q) {
      if (state.Quadrant(q).Intersects(query.window)) out->push_back(q);
    }
  }

  static bool LeafConsistent(const Query& query, const State& state,
                             const Key& key) {
    return KdOps::LeafConsistent(query, KdOps::State{state.box}, key);
  }

  static bool KeyEquals(const Key& a, const Key& b) {
    return KdOps::KeyEquals(a, b);
  }

  static void EncodeKey(const Key& key, std::string* out) {
    KdOps::EncodeKey(key, out);
  }
  static Result<Key> DecodeKey(std::string_view data, size_t* off) {
    return KdOps::DecodeKey(data, off);
  }
  static void EncodeInner(const Inner& inner, std::string* out) {
    for (uint64_t kid : inner.kids) {
      out->append(reinterpret_cast<const char*>(&kid), 8);
    }
  }
  static Result<Inner> DecodeInner(std::string_view data, size_t* off) {
    if (*off + 32 > data.size()) return Status::Corruption("quad inner");
    Inner inner;
    for (int i = 0; i < 4; ++i) {
      std::memcpy(&inner.kids[i], data.data() + *off, 8);
      *off += 8;
    }
    return inner;
  }

  static constexpr bool kSupportsKnn = true;
  static double StateBound2(const State& state, double x, double y) {
    return state.box.MinDist2(x, y);
  }
  static double KeyDist2(const Key& key, double x, double y) {
    return key.Dist2(x, y);
  }
};

using SpGistQuadTree = SpGistIndex<QuadOps>;

}  // namespace bdbms

#endif  // BDBMS_INDEX_SPGIST_QUAD_OPS_H_
