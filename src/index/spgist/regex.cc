#include "index/spgist/regex.h"

#include <algorithm>

namespace bdbms {

Result<RegexProgram> RegexProgram::Compile(std::string_view pattern) {
  if (pattern.empty()) {
    return Status::InvalidArgument("regex: empty pattern");
  }
  RegexProgram prog;
  size_t i = 0;
  while (i < pattern.size()) {
    Atom atom;
    char c = pattern[i];
    if (c == '*' || c == '+' || c == '?') {
      return Status::InvalidArgument("regex: dangling quantifier");
    }
    if (c == '.') {
      atom.kind = Atom::Kind::kAny;
      ++i;
    } else if (c == '[') {
      size_t close = pattern.find(']', i + 1);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("regex: unterminated character class");
      }
      atom.kind = Atom::Kind::kClass;
      atom.char_class = std::string(pattern.substr(i + 1, close - i - 1));
      if (atom.char_class.empty()) {
        return Status::InvalidArgument("regex: empty character class");
      }
      i = close + 1;
    } else if (c == '\\') {
      if (i + 1 >= pattern.size()) {
        return Status::InvalidArgument("regex: trailing backslash");
      }
      atom.kind = Atom::Kind::kLiteral;
      atom.literal = pattern[i + 1];
      i += 2;
    } else {
      atom.kind = Atom::Kind::kLiteral;
      atom.literal = c;
      ++i;
    }
    if (i < pattern.size()) {
      if (pattern[i] == '*') {
        atom.star = true;
        atom.optional = true;
        ++i;
      } else if (pattern[i] == '+') {
        atom.star = true;  // at least once, then repeats
        ++i;
      } else if (pattern[i] == '?') {
        atom.optional = true;
        ++i;
      }
    }
    prog.atoms_.push_back(std::move(atom));
  }
  return prog;
}

void RegexProgram::Close(std::vector<int>* states) const {
  // Epsilon closure: optional atoms may be skipped.
  std::vector<bool> seen(atoms_.size() + 1, false);
  std::vector<int> stack = *states;
  states->clear();
  for (int s : stack) {
    if (!seen[s]) {
      seen[s] = true;
      states->push_back(s);
    }
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    if (s < static_cast<int>(atoms_.size()) && atoms_[s].optional &&
        !seen[s + 1]) {
      seen[s + 1] = true;
      states->push_back(s + 1);
      stack.push_back(s + 1);
    }
  }
  std::sort(states->begin(), states->end());
}

std::vector<int> RegexProgram::StartStates() const {
  std::vector<int> states{0};
  Close(&states);
  return states;
}

std::vector<int> RegexProgram::Advance(const std::vector<int>& states,
                                       char c) const {
  std::vector<int> next;
  for (int s : states) {
    if (s >= static_cast<int>(atoms_.size())) continue;
    const Atom& atom = atoms_[s];
    if (!atom.Matches(c)) continue;
    if (atom.star) next.push_back(s);  // may repeat
    next.push_back(s + 1);             // consumed once
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  Close(&next);
  return next;
}

bool RegexProgram::Accepting(const std::vector<int>& states) const {
  return std::find(states.begin(), states.end(),
                   static_cast<int>(atoms_.size())) != states.end();
}

bool RegexProgram::FullMatch(std::string_view text) const {
  std::vector<int> states = StartStates();
  for (char c : text) {
    states = Advance(states, c);
    if (states.empty()) return false;
  }
  return Accepting(states);
}

}  // namespace bdbms
