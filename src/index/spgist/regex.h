#ifndef BDBMS_INDEX_SPGIST_REGEX_H_
#define BDBMS_INDEX_SPGIST_REGEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace bdbms {

// Small NFA-based regular-expression engine used by the SP-GiST trie's
// regular-expression match search (paper §7.1). Supported syntax:
//   literal characters,  .  (any char),  [abc] character classes,
//   X* (zero or more of the preceding atom), X+ and X? sugar.
// The engine exposes its state sets so the trie can advance the NFA edge
// by edge while descending and prune subtrees whose state set goes dead.
class RegexProgram {
 public:
  static Result<RegexProgram> Compile(std::string_view pattern);

  // State set at the start of matching (epsilon-closed).
  std::vector<int> StartStates() const;

  // Advances every state in `states` over character `c` (epsilon-closed).
  // An empty result means no continuation can ever match.
  std::vector<int> Advance(const std::vector<int>& states, char c) const;

  // True if any state in the set is accepting (the whole input consumed a
  // full match).
  bool Accepting(const std::vector<int>& states) const;

  // Convenience: does the entire `text` match?
  bool FullMatch(std::string_view text) const;

 private:
  struct Atom {
    enum class Kind { kLiteral, kAny, kClass } kind = Kind::kLiteral;
    char literal = 0;
    std::string char_class;
    bool star = false;   // may repeat
    bool optional = false;  // may be skipped (from * or ?)

    bool Matches(char c) const {
      switch (kind) {
        case Kind::kLiteral:
          return c == literal;
        case Kind::kAny:
          return true;
        case Kind::kClass:
          return char_class.find(c) != std::string::npos;
      }
      return false;
    }
  };

  // State i = "first i atoms consumed"; state atoms_.size() accepts.
  void Close(std::vector<int>* states) const;

  std::vector<Atom> atoms_;
};

}  // namespace bdbms

#endif  // BDBMS_INDEX_SPGIST_REGEX_H_
