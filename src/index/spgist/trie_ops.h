#ifndef BDBMS_INDEX_SPGIST_TRIE_OPS_H_
#define BDBMS_INDEX_SPGIST_TRIE_OPS_H_

#include <cstring>
#include <string>
#include <vector>

#include "index/spgist/regex.h"
#include "index/spgist/spgist.h"

namespace bdbms {

// SP-GiST operator class instantiating a disk-based trie over byte
// strings (paper §7.1: "disk-based trie variants"). Inner nodes partition
// by next character; the reserved label '\0' collects keys exhausted at
// this depth, so embedded NUL bytes are not supported. Supports exact
// match, prefix match and regular-expression match (via RegexProgram,
// advanced edge-by-edge with dead-state pruning).
struct TrieOps {
  using Key = std::string;  // the suffix remaining below this node

  struct Config {};

  struct State {
    std::string prefix;  // characters consumed on the path from the root
    // Regex searches cache the NFA state set reached after consuming
    // `prefix`, advanced once per edge by DescendSearch; nfa_valid is
    // false only at the root (and on insert paths, which never read it).
    std::vector<int> nfa;
    bool nfa_valid = false;
  };

  struct Inner {
    std::vector<char> labels;  // '\0' = end-of-key child
    std::vector<uint64_t> children;

    size_t NumChildren() const { return children.size(); }
    uint64_t child(size_t i) const { return children[i]; }
    void set_child(size_t i, uint64_t v) { children[i] = v; }

    size_t FindOrAddLabel(char label, bool* added) {
      for (size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] == label) {
          *added = false;
          return i;
        }
      }
      labels.push_back(label);
      children.push_back(kSpGistNullNode);
      *added = true;
      return labels.size() - 1;
    }
  };

  enum class QueryKind { kExact, kPrefix, kRegex };
  struct Query {
    QueryKind kind = QueryKind::kExact;
    std::string text;                   // exact / prefix target
    const RegexProgram* regex = nullptr;  // kRegex
  };

  static Query Exact(std::string text) {
    return {QueryKind::kExact, std::move(text), nullptr};
  }
  static Query Prefix(std::string text) {
    return {QueryKind::kPrefix, std::move(text), nullptr};
  }
  static Query Regex(const RegexProgram* prog) {
    return {QueryKind::kRegex, "", prog};
  }

  static State RootState(const Config&) { return {}; }

  struct ChooseResult {
    size_t slot;
    bool modified;
  };

  static ChooseResult Choose(Inner* inner, Key* key, const State&) {
    char label = key->empty() ? '\0' : (*key)[0];
    if (!key->empty()) key->erase(0, 1);
    bool added = false;
    size_t slot = inner->FindOrAddLabel(label, &added);
    return {slot, added};
  }

  static State Descend(const Inner& inner, size_t slot, const State& state) {
    State next = state;
    if (inner.labels[slot] != '\0') next.prefix.push_back(inner.labels[slot]);
    return next;
  }

  // Query-aware descent for Search/Remove: the regex NFA state set is
  // advanced across the edge exactly once, instead of being replayed
  // from the root prefix at every node (O(edges) total, not O(depth^2)).
  static State DescendSearch(const Inner& inner, size_t slot,
                             const State& state, const Query& query) {
    State next = Descend(inner, slot, state);
    if (query.kind == QueryKind::kRegex) {
      if (inner.labels[slot] == '\0') {
        next.nfa = NfaStates(query, state);
      } else {
        next.nfa = query.regex->Advance(NfaStates(query, state),
                                        inner.labels[slot]);
      }
      next.nfa_valid = true;
    }
    return next;
  }

  static void PickSplit(const State&,
                        std::vector<std::pair<Key, uint64_t>>* entries,
                        Inner* inner,
                        std::vector<std::vector<std::pair<Key, uint64_t>>>*
                            partitions) {
    for (auto& [key, payload] : *entries) {
      char label = key.empty() ? '\0' : key[0];
      bool added = false;
      size_t slot = inner->FindOrAddLabel(label, &added);
      if (added) partitions->emplace_back();
      while (partitions->size() < inner->NumChildren()) {
        partitions->emplace_back();
      }
      Key rest = key.empty() ? Key() : key.substr(1);
      (*partitions)[slot].emplace_back(std::move(rest), payload);
    }
  }

  static void SearchChildren(const Inner& inner, const Query& query,
                             const State& state, std::vector<size_t>* out) {
    switch (query.kind) {
      case QueryKind::kExact: {
        // The path consumed state.prefix; it must be a prefix of the
        // target or this subtree is dead.
        if (query.text.compare(0, state.prefix.size(), state.prefix) != 0 ||
            state.prefix.size() > query.text.size()) {
          return;
        }
        char want = state.prefix.size() == query.text.size()
                        ? '\0'
                        : query.text[state.prefix.size()];
        for (size_t i = 0; i < inner.labels.size(); ++i) {
          if (inner.labels[i] == want) out->push_back(i);
        }
        return;
      }
      case QueryKind::kPrefix: {
        size_t depth = state.prefix.size();
        if (depth >= query.text.size()) {
          // Prefix fully consumed: the whole subtree matches.
          for (size_t i = 0; i < inner.labels.size(); ++i) out->push_back(i);
          return;
        }
        char want = query.text[depth];
        for (size_t i = 0; i < inner.labels.size(); ++i) {
          if (inner.labels[i] == want) out->push_back(i);
        }
        return;
      }
      case QueryKind::kRegex: {
        // The NFA state set for this node's depth arrives cached from
        // DescendSearch (recomputed only at the root, whose prefix is
        // empty); test each outgoing edge and prune dead subtrees.
        std::vector<int> states = NfaStates(query, state);
        if (states.empty()) return;
        for (size_t i = 0; i < inner.labels.size(); ++i) {
          if (inner.labels[i] == '\0') {
            // Keys ending here still carry a leaf suffix of "" — accept
            // iff the current state set accepts.
            if (query.regex->Accepting(states)) out->push_back(i);
          } else if (!query.regex->Advance(states, inner.labels[i]).empty()) {
            out->push_back(i);
          }
        }
        return;
      }
    }
  }

  static bool LeafConsistent(const Query& query, const State& state,
                             const Key& key) {
    switch (query.kind) {
      case QueryKind::kExact:
        return state.prefix.size() + key.size() == query.text.size() &&
               query.text.compare(0, state.prefix.size(), state.prefix) == 0 &&
               query.text.compare(state.prefix.size(), key.size(), key) == 0;
      case QueryKind::kPrefix: {
        std::string full = state.prefix + key;
        return full.size() >= query.text.size() &&
               full.compare(0, query.text.size(), query.text) == 0;
      }
      case QueryKind::kRegex: {
        std::vector<int> states = NfaStates(query, state);
        if (states.empty()) return false;
        for (char c : key) {
          states = query.regex->Advance(states, c);
          if (states.empty()) return false;
        }
        return query.regex->Accepting(states);
      }
    }
    return false;
  }

  static bool KeyEquals(const Key& a, const Key& b) { return a == b; }

  // The cached NFA state set when DescendSearch filled one in, else the
  // set reached by replaying the path prefix (the root only).
  static std::vector<int> NfaStates(const Query& query, const State& state) {
    if (state.nfa_valid) return state.nfa;
    std::vector<int> states = query.regex->StartStates();
    for (char c : state.prefix) {
      states = query.regex->Advance(states, c);
      if (states.empty()) break;
    }
    return states;
  }

  static void EncodeKey(const Key& key, std::string* out) {
    uint32_t len = static_cast<uint32_t>(key.size());
    out->append(reinterpret_cast<const char*>(&len), 4);
    out->append(key);
  }
  static Result<Key> DecodeKey(std::string_view data, size_t* off) {
    if (*off + 4 > data.size()) return Status::Corruption("trie key");
    uint32_t len;
    std::memcpy(&len, data.data() + *off, 4);
    *off += 4;
    if (*off + len > data.size()) return Status::Corruption("trie key");
    Key key(data.substr(*off, len));
    *off += len;
    return key;
  }
  static void EncodeInner(const Inner& inner, std::string* out) {
    uint32_t n = static_cast<uint32_t>(inner.labels.size());
    out->append(reinterpret_cast<const char*>(&n), 4);
    for (size_t i = 0; i < inner.labels.size(); ++i) {
      out->push_back(inner.labels[i]);
      out->append(reinterpret_cast<const char*>(&inner.children[i]), 8);
    }
  }
  static Result<Inner> DecodeInner(std::string_view data, size_t* off) {
    if (*off + 4 > data.size()) return Status::Corruption("trie inner");
    uint32_t n;
    std::memcpy(&n, data.data() + *off, 4);
    *off += 4;
    Inner inner;
    for (uint32_t i = 0; i < n; ++i) {
      if (*off + 9 > data.size()) return Status::Corruption("trie inner");
      inner.labels.push_back(data[*off]);
      ++*off;
      uint64_t child;
      std::memcpy(&child, data.data() + *off, 8);
      *off += 8;
      inner.children.push_back(child);
    }
    return inner;
  }

  static constexpr bool kSupportsKnn = false;
  static double StateBound2(const State&, double, double) { return 0; }
  static double KeyDist2(const Key&, double, double) { return 0; }
};

using SpGistTrie = SpGistIndex<TrieOps>;

}  // namespace bdbms

#endif  // BDBMS_INDEX_SPGIST_TRIE_OPS_H_
