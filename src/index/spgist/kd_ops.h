#ifndef BDBMS_INDEX_SPGIST_KD_OPS_H_
#define BDBMS_INDEX_SPGIST_KD_OPS_H_

#include <algorithm>
#include <cstring>

#include "index/rtree/rtree.h"  // Rect
#include "index/spgist/spgist.h"

namespace bdbms {

// 2-D point with the spatial query vocabulary shared by the kd-tree and
// quadtree operator classes.
struct SpPoint {
  double x = 0, y = 0;

  double Dist2(double px, double py) const {
    double dx = x - px, dy = y - py;
    return dx * dx + dy * dy;
  }
};

enum class SpatialQueryKind { kPointEq, kWindow };
struct SpatialQuery {
  SpatialQueryKind kind = SpatialQueryKind::kPointEq;
  SpPoint point;
  Rect window;

  static SpatialQuery Eq(double x, double y) {
    SpatialQuery q;
    q.kind = SpatialQueryKind::kPointEq;
    q.point = {x, y};
    return q;
  }
  static SpatialQuery Window(const Rect& r) {
    SpatialQuery q;
    q.kind = SpatialQueryKind::kWindow;
    q.window = r;
    return q;
  }
};

// SP-GiST operator class instantiating a disk-based kd-tree (Bentley).
// Inner nodes split on one dimension at the median; points with
// coordinate <= split go left. Supports point lookup, window queries and
// k-NN (paper §7.1 compares these against the R-tree).
struct KdOps {
  using Key = SpPoint;
  using Query = SpatialQuery;

  struct Config {
    Rect bounds{0, 0, 1, 1};  // world box for the root traversal state
  };

  struct State {
    Rect box;
  };

  struct Inner {
    uint8_t dim = 0;  // 0 = x, 1 = y
    double split = 0;
    uint64_t kids[2] = {kSpGistNullNode, kSpGistNullNode};

    size_t NumChildren() const { return 2; }
    uint64_t child(size_t i) const { return kids[i]; }
    void set_child(size_t i, uint64_t v) { kids[i] = v; }
  };

  static State RootState(const Config& config) { return {config.bounds}; }

  struct ChooseResult {
    size_t slot;
    bool modified;
  };

  static ChooseResult Choose(Inner* inner, Key* key, const State&) {
    double coord = inner->dim == 0 ? key->x : key->y;
    return {coord <= inner->split ? size_t{0} : size_t{1}, false};
  }

  static State Descend(const Inner& inner, size_t slot, const State& state) {
    State next = state;
    if (inner.dim == 0) {
      (slot == 0 ? next.box.x2 : next.box.x1) = inner.split;
    } else {
      (slot == 0 ? next.box.y2 : next.box.y1) = inner.split;
    }
    return next;
  }

  static void PickSplit(const State&,
                        std::vector<std::pair<Key, uint64_t>>* entries,
                        Inner* inner,
                        std::vector<std::vector<std::pair<Key, uint64_t>>>*
                            partitions) {
    // Split dimension: the one with the larger spread; split at median.
    double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
    for (const auto& [p, payload] : *entries) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
    inner->dim = (max_x - min_x) >= (max_y - min_y) ? 0 : 1;
    std::vector<double> coords;
    coords.reserve(entries->size());
    for (const auto& [p, payload] : *entries) {
      coords.push_back(inner->dim == 0 ? p.x : p.y);
    }
    std::nth_element(coords.begin(), coords.begin() + coords.size() / 2,
                     coords.end());
    inner->split = coords[coords.size() / 2];
    // Median == max (duplicates): nudge to the midpoint so the right side
    // is non-empty when possible.
    double lo = inner->dim == 0 ? min_x : min_y;
    double hi = inner->dim == 0 ? max_x : max_y;
    if (inner->split >= hi && lo < hi) inner->split = (lo + hi) / 2;

    partitions->assign(2, {});
    for (auto& [p, payload] : *entries) {
      double coord = inner->dim == 0 ? p.x : p.y;
      (*partitions)[coord <= inner->split ? 0 : 1].emplace_back(p, payload);
    }
  }

  static void SearchChildren(const Inner& inner, const Query& query,
                             const State&, std::vector<size_t>* out) {
    if (query.kind == SpatialQueryKind::kPointEq) {
      double coord = inner.dim == 0 ? query.point.x : query.point.y;
      out->push_back(coord <= inner.split ? 0 : 1);
      return;
    }
    double lo = inner.dim == 0 ? query.window.x1 : query.window.y1;
    double hi = inner.dim == 0 ? query.window.x2 : query.window.y2;
    if (lo <= inner.split) out->push_back(0);
    if (hi > inner.split) out->push_back(1);
  }

  static bool LeafConsistent(const Query& query, const State&,
                             const Key& key) {
    if (query.kind == SpatialQueryKind::kPointEq) {
      return key.x == query.point.x && key.y == query.point.y;
    }
    return key.x >= query.window.x1 && key.x <= query.window.x2 &&
           key.y >= query.window.y1 && key.y <= query.window.y2;
  }

  static bool KeyEquals(const Key& a, const Key& b) {
    return a.x == b.x && a.y == b.y;
  }

  static void EncodeKey(const Key& key, std::string* out) {
    out->append(reinterpret_cast<const char*>(&key.x), 8);
    out->append(reinterpret_cast<const char*>(&key.y), 8);
  }
  static Result<Key> DecodeKey(std::string_view data, size_t* off) {
    if (*off + 16 > data.size()) return Status::Corruption("kd key");
    Key key;
    std::memcpy(&key.x, data.data() + *off, 8);
    std::memcpy(&key.y, data.data() + *off + 8, 8);
    *off += 16;
    return key;
  }
  static void EncodeInner(const Inner& inner, std::string* out) {
    out->push_back(static_cast<char>(inner.dim));
    out->append(reinterpret_cast<const char*>(&inner.split), 8);
    out->append(reinterpret_cast<const char*>(&inner.kids[0]), 8);
    out->append(reinterpret_cast<const char*>(&inner.kids[1]), 8);
  }
  static Result<Inner> DecodeInner(std::string_view data, size_t* off) {
    if (*off + 25 > data.size()) return Status::Corruption("kd inner");
    Inner inner;
    inner.dim = static_cast<uint8_t>(data[*off]);
    std::memcpy(&inner.split, data.data() + *off + 1, 8);
    std::memcpy(&inner.kids[0], data.data() + *off + 9, 8);
    std::memcpy(&inner.kids[1], data.data() + *off + 17, 8);
    *off += 25;
    return inner;
  }

  static constexpr bool kSupportsKnn = true;
  static double StateBound2(const State& state, double x, double y) {
    return state.box.MinDist2(x, y);
  }
  static double KeyDist2(const Key& key, double x, double y) {
    return key.Dist2(x, y);
  }
};

using SpGistKdTree = SpGistIndex<KdOps>;

}  // namespace bdbms

#endif  // BDBMS_INDEX_SPGIST_KD_OPS_H_
