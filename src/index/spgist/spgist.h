#ifndef BDBMS_INDEX_SPGIST_SPGIST_H_
#define BDBMS_INDEX_SPGIST_SPGIST_H_

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/result.h"
#include "storage/heap_file.h"

namespace bdbms {

// SP-GiST: an extensible indexing framework for the class of space-
// partitioning trees (paper §7.1, citing Aref & Ilyas). The framework owns
// node storage (paged, I/O counted), descent, splits and traversal; an
// operator class instantiates a concrete index (disk-based trie, kd-tree,
// PR quadtree, ...) by supplying the partitioning logic — mirroring the
// PostgreSQL SP-GiST extension API the authors integrated:
//
//   struct Op {
//     using Key;      // leaf datum
//     using Query;    // search descriptor
//     struct Config;  // per-index parameters (e.g. world bounds)
//     struct State;   // traversal state reconstructed along the path
//     struct Inner {  // inner-node content (labels/planes/quadrants)
//       size_t NumChildren() const;
//       uint64_t child(size_t) const;
//       void set_child(size_t, uint64_t);
//     };
//     static State RootState(const Config&);
//     struct ChooseResult { size_t slot; bool modified; };
//     static ChooseResult Choose(Inner*, Key*, const State&);   // descent
//     static State Descend(const Inner&, size_t slot, const State&);
//     static void PickSplit(const State&,
//                           std::vector<std::pair<Key, uint64_t>>* entries,
//                           Inner* inner,
//                           std::vector<std::vector<std::pair<Key, uint64_t>>>*
//                               partitions);
//     static void SearchChildren(const Inner&, const Query&, const State&,
//                                std::vector<size_t>* out);
//     static bool LeafConsistent(const Query&, const State&, const Key&);
//     static bool KeyEquals(const Key&, const Key&);
//     static void EncodeKey(const Key&, std::string*);
//     static Result<Key> DecodeKey(std::string_view, size_t*);
//     static void EncodeInner(const Inner&, std::string*);
//     static Result<Inner> DecodeInner(std::string_view, size_t*);
//     static constexpr bool kSupportsKnn;       // + the two hooks below
//     static double StateBound2(const State&, double x, double y);
//     static double KeyDist2(const Key&, double x, double y);
//   };
//
// An operator class may additionally provide
//
//     static State DescendSearch(const Inner&, size_t slot, const State&,
//                                const Query&);
//
// which Search/Remove then use instead of Descend, letting the class
// thread query-derived state (e.g. an NFA state set) across each edge
// exactly once instead of recomputing it from the path at every node.
inline constexpr uint64_t kSpGistNullNode = UINT64_MAX;

template <typename Op>
class SpGistIndex {
 public:
  using Key = typename Op::Key;
  using Query = typename Op::Query;
  using State = typename Op::State;
  using Config = typename Op::Config;
  using LeafEntry = std::pair<Key, uint64_t>;

  static Result<std::unique_ptr<SpGistIndex>> Create(Config config,
                                                     size_t pool_pages = 256) {
    BDBMS_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> heap,
                           HeapFile::CreateInMemory(pool_pages));
    auto index = std::unique_ptr<SpGistIndex>(
        new SpGistIndex(std::move(config), std::move(heap)));
    Node root;
    root.leaf = true;
    BDBMS_RETURN_IF_ERROR(index->NewNode(root).status());
    return index;
  }

  SpGistIndex(const SpGistIndex&) = delete;
  SpGistIndex& operator=(const SpGistIndex&) = delete;

  Status Insert(Key key, uint64_t payload) {
    uint64_t node_id = 0;
    State state = Op::RootState(config_);
    for (;;) {
      BDBMS_ASSIGN_OR_RETURN(Node node, ReadNode(node_id));
      if (node.leaf) {
        node.entries.emplace_back(key, payload);
        if (node.entries.size() <= kLeafCapacity || AllKeysEqual(node)) {
          BDBMS_RETURN_IF_ERROR(WriteNode(node_id, node));
          ++size_;
          return Status::Ok();
        }
        // Overflow: PickSplit turns this leaf into an inner node with
        // fresh child leaves.
        Node inner;
        inner.leaf = false;
        std::vector<std::vector<LeafEntry>> partitions;
        Op::PickSplit(state, &node.entries, &inner.inner, &partitions);
        if (partitions.size() != inner.inner.NumChildren()) {
          return Status::Internal("PickSplit partition/child mismatch");
        }
        // No-progress guard (e.g. every key in the same quadrant of a
        // degenerate region): keep the oversized leaf.
        for (const auto& part : partitions) {
          if (part.size() == node.entries.size() && partitions.size() > 0 &&
              node.entries.size() > kLeafCapacity * 4) {
            BDBMS_RETURN_IF_ERROR(WriteNode(node_id, node));
            ++size_;
            return Status::Ok();
          }
        }
        for (size_t i = 0; i < partitions.size(); ++i) {
          if (partitions[i].empty()) {
            inner.inner.set_child(i, kSpGistNullNode);
            continue;
          }
          Node child;
          child.leaf = true;
          child.entries = std::move(partitions[i]);
          BDBMS_ASSIGN_OR_RETURN(uint64_t child_id, NewNode(child));
          inner.inner.set_child(i, child_id);
        }
        BDBMS_RETURN_IF_ERROR(WriteNode(node_id, inner));
        ++size_;
        return Status::Ok();
      }

      typename Op::ChooseResult choice = Op::Choose(&node.inner, &key, state);
      State child_state = Op::Descend(node.inner, choice.slot, state);
      uint64_t child = node.inner.child(choice.slot);
      if (child == kSpGistNullNode) {
        Node leaf;
        leaf.leaf = true;
        leaf.entries.emplace_back(std::move(key), payload);
        BDBMS_ASSIGN_OR_RETURN(uint64_t child_id, NewNode(leaf));
        node.inner.set_child(choice.slot, child_id);
        BDBMS_RETURN_IF_ERROR(WriteNode(node_id, node));
        ++size_;
        return Status::Ok();
      }
      if (choice.modified) {
        BDBMS_RETURN_IF_ERROR(WriteNode(node_id, node));
      }
      node_id = child;
      state = std::move(child_state);
    }
  }

  // Visits every (key, payload) consistent with `query`; fn returning
  // false stops the search.
  Status Search(const Query& query,
                const std::function<bool(const Key&, uint64_t)>& fn) const {
    std::vector<std::pair<uint64_t, State>> stack;
    stack.emplace_back(0, Op::RootState(config_));
    while (!stack.empty()) {
      auto [node_id, state] = std::move(stack.back());
      stack.pop_back();
      BDBMS_ASSIGN_OR_RETURN(Node node, ReadNode(node_id));
      if (node.leaf) {
        for (const LeafEntry& e : node.entries) {
          if (Op::LeafConsistent(query, state, e.first)) {
            if (!fn(e.first, e.second)) return Status::Ok();
          }
        }
        continue;
      }
      std::vector<size_t> children;
      Op::SearchChildren(node.inner, query, state, &children);
      for (size_t slot : children) {
        uint64_t child = node.inner.child(slot);
        if (child == kSpGistNullNode) continue;
        stack.emplace_back(child, DescendForSearch(node.inner, slot, state,
                                                   query));
      }
    }
    return Status::Ok();
  }

  // Removes one entry whose key is consistent with `query` (callers pass
  // an exact-match query) and whose payload equals `payload`; returns
  // whether an entry was removed. This is what lets table-level indexes
  // built on SP-GiST stay maintained under UPDATE/DELETE (and approval
  // rollbacks) instead of being bulk-rebuild-only.
  Result<bool> Remove(const Query& query, uint64_t payload) {
    std::vector<std::pair<uint64_t, State>> stack;
    stack.emplace_back(0, Op::RootState(config_));
    while (!stack.empty()) {
      auto [node_id, state] = std::move(stack.back());
      stack.pop_back();
      BDBMS_ASSIGN_OR_RETURN(Node node, ReadNode(node_id));
      if (node.leaf) {
        for (auto it = node.entries.begin(); it != node.entries.end(); ++it) {
          if (it->second == payload &&
              Op::LeafConsistent(query, state, it->first)) {
            node.entries.erase(it);
            BDBMS_RETURN_IF_ERROR(WriteNode(node_id, node));
            --size_;
            return true;
          }
        }
        continue;
      }
      std::vector<size_t> children;
      Op::SearchChildren(node.inner, query, state, &children);
      for (size_t slot : children) {
        uint64_t child = node.inner.child(slot);
        if (child == kSpGistNullNode) continue;
        stack.emplace_back(child, DescendForSearch(node.inner, slot, state,
                                                   query));
      }
    }
    return false;
  }

  // k-nearest-neighbor search (best-first over partition lower bounds).
  // Only for operator classes with kSupportsKnn.
  Result<std::vector<std::pair<uint64_t, double>>> SearchKnn(double x,
                                                             double y,
                                                             size_t k) const {
    static_assert(Op::kSupportsKnn, "operator class has no distance support");
    struct Item {
      double dist2;
      bool is_node;
      uint64_t node;
      State state;
      uint64_t payload;
      bool operator>(const Item& o) const { return dist2 > o.dist2; }
    };
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({0.0, true, 0, Op::RootState(config_), 0});
    std::vector<std::pair<uint64_t, double>> out;
    while (!pq.empty() && out.size() < k) {
      Item item = pq.top();
      pq.pop();
      if (!item.is_node) {
        out.emplace_back(item.payload, std::sqrt(item.dist2));
        continue;
      }
      BDBMS_ASSIGN_OR_RETURN(Node node, ReadNode(item.node));
      if (node.leaf) {
        for (const LeafEntry& e : node.entries) {
          pq.push({Op::KeyDist2(e.first, x, y), false, 0, item.state,
                   e.second});
        }
        continue;
      }
      for (size_t slot = 0; slot < node.inner.NumChildren(); ++slot) {
        uint64_t child = node.inner.child(slot);
        if (child == kSpGistNullNode) continue;
        State child_state = Op::Descend(node.inner, slot, item.state);
        pq.push({Op::StateBound2(child_state, x, y), true, child,
                 std::move(child_state), 0});
      }
    }
    return out;
  }

  // Guided depth-first traversal for searches whose per-node state is
  // richer than what Op::State + Query can express (e.g. a dynamic-
  // programming row shared down trie edges). The walker owns descent:
  //
  //   struct Walker {
  //     using WState;                       // per-subtree traversal state
  //     WState Root();
  //     // nullopt prunes the child subtree.
  //     std::optional<WState> Descend(const typename Op::Inner&, size_t slot,
  //                                   const WState&);
  //     bool Leaf(const WState&, const Key&, uint64_t payload);  // false stops
  //   };
  template <typename Walker>
  Status SearchGuided(Walker& walker) const {
    using WState = typename Walker::WState;
    std::vector<std::pair<uint64_t, WState>> stack;
    stack.emplace_back(0, walker.Root());
    while (!stack.empty()) {
      auto [node_id, state] = std::move(stack.back());
      stack.pop_back();
      BDBMS_ASSIGN_OR_RETURN(Node node, ReadNode(node_id));
      if (node.leaf) {
        for (const LeafEntry& e : node.entries) {
          if (!walker.Leaf(state, e.first, e.second)) return Status::Ok();
        }
        continue;
      }
      for (size_t slot = 0; slot < node.inner.NumChildren(); ++slot) {
        uint64_t child = node.inner.child(slot);
        if (child == kSpGistNullNode) continue;
        std::optional<WState> next = walker.Descend(node.inner, slot, state);
        if (next) stack.emplace_back(child, std::move(*next));
      }
    }
    return Status::Ok();
  }

  // Best-first ordered traversal in the style of PostgreSQL's spgscan.c
  // distance-ranked scans: subtrees are expanded in order of a walker-
  // computed lower bound, leaf entries surface in exact-distance order.
  // The walker contract extends SearchGuided's with:
  //
  //   double Bound(const WState&);                      // subtree lower bound
  //   // exact distance, or nullopt if the entry is not a result
  //   std::optional<double> LeafDistance(const WState&, const Key&);
  //   // entries arrive in nondecreasing distance; false stops the scan
  //   bool Emit(const WState&, const Key&, uint64_t payload, double dist);
  template <typename Walker>
  Status SearchOrdered(Walker& walker) const {
    using WState = typename Walker::WState;
    struct Item {
      double bound;
      bool is_node;
      uint64_t node;
      WState state;
      Key key;  // leaf suffix (entry items only)
      uint64_t payload;
    };
    auto later = [](const Item& a, const Item& b) { return a.bound > b.bound; };
    std::vector<Item> heap;
    {
      WState root = walker.Root();
      double bound = walker.Bound(root);
      heap.push_back({bound, true, 0, std::move(root), Key(), 0});
    }
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), later);
      Item item = std::move(heap.back());
      heap.pop_back();
      if (!item.is_node) {
        if (!walker.Emit(item.state, item.key, item.payload, item.bound)) {
          return Status::Ok();
        }
        continue;
      }
      BDBMS_ASSIGN_OR_RETURN(Node node, ReadNode(item.node));
      if (node.leaf) {
        for (const LeafEntry& e : node.entries) {
          std::optional<double> dist = walker.LeafDistance(item.state, e.first);
          if (!dist) continue;
          heap.push_back({*dist, false, 0, item.state, e.first, e.second});
          std::push_heap(heap.begin(), heap.end(), later);
        }
        continue;
      }
      for (size_t slot = 0; slot < node.inner.NumChildren(); ++slot) {
        uint64_t child = node.inner.child(slot);
        if (child == kSpGistNullNode) continue;
        std::optional<WState> next =
            walker.Descend(node.inner, slot, item.state);
        if (!next) continue;
        double bound = walker.Bound(*next);
        heap.push_back({bound, true, child, std::move(*next), Key(), 0});
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
    return Status::Ok();
  }

  uint64_t size() const { return size_; }
  uint64_t node_count() const { return nodes_.size(); }
  uint64_t SizeBytes() const { return heap_->SizeBytes(); }
  const IoStats& io_stats() const { return heap_->io_stats(); }
  IoStats& io_stats() { return heap_->io_stats(); }

 private:
  static constexpr size_t kLeafCapacity = 32;

  struct Node {
    bool leaf = true;
    std::vector<LeafEntry> entries;  // leaf content
    typename Op::Inner inner;        // inner content
  };

  SpGistIndex(Config config, std::unique_ptr<HeapFile> heap)
      : config_(std::move(config)), heap_(std::move(heap)) {}

  // Search/Remove descend through the query-aware hook when the operator
  // class provides one, so per-edge query state rides along the path.
  static State DescendForSearch(const typename Op::Inner& inner, size_t slot,
                                const State& state, const Query& query) {
    if constexpr (requires { Op::DescendSearch(inner, slot, state, query); }) {
      return Op::DescendSearch(inner, slot, state, query);
    } else {
      return Op::Descend(inner, slot, state);
    }
  }

  static bool AllKeysEqual(const Node& node) {
    for (size_t i = 1; i < node.entries.size(); ++i) {
      if (!Op::KeyEquals(node.entries[i].first, node.entries[0].first)) {
        return false;
      }
    }
    return true;
  }

  static std::string EncodeNode(const Node& node) {
    std::string out;
    out.push_back(node.leaf ? 0 : 1);
    if (node.leaf) {
      uint32_t count = static_cast<uint32_t>(node.entries.size());
      out.append(reinterpret_cast<const char*>(&count), 4);
      for (const LeafEntry& e : node.entries) {
        Op::EncodeKey(e.first, &out);
        out.append(reinterpret_cast<const char*>(&e.second), 8);
      }
    } else {
      Op::EncodeInner(node.inner, &out);
    }
    return out;
  }

  static Result<Node> DecodeNode(std::string_view data) {
    if (data.empty()) return Status::Corruption("empty sp-gist node");
    Node node;
    node.leaf = data[0] == 0;
    size_t off = 1;
    if (node.leaf) {
      if (off + 4 > data.size()) return Status::Corruption("truncated leaf");
      uint32_t count;
      std::memcpy(&count, data.data() + off, 4);
      off += 4;
      for (uint32_t i = 0; i < count; ++i) {
        BDBMS_ASSIGN_OR_RETURN(Key key, Op::DecodeKey(data, &off));
        if (off + 8 > data.size()) return Status::Corruption("truncated leaf");
        uint64_t payload;
        std::memcpy(&payload, data.data() + off, 8);
        off += 8;
        node.entries.emplace_back(std::move(key), payload);
      }
    } else {
      BDBMS_ASSIGN_OR_RETURN(node.inner, Op::DecodeInner(data, &off));
    }
    return node;
  }

  Result<uint64_t> NewNode(const Node& node) {
    BDBMS_ASSIGN_OR_RETURN(RecordId rid, heap_->Insert(EncodeNode(node)));
    nodes_.push_back(rid);
    return nodes_.size() - 1;
  }

  Result<Node> ReadNode(uint64_t node_id) const {
    if (node_id >= nodes_.size()) {
      return Status::Corruption("bad sp-gist node id");
    }
    BDBMS_ASSIGN_OR_RETURN(std::string payload, heap_->Read(nodes_[node_id]));
    return DecodeNode(payload);
  }

  Status WriteNode(uint64_t node_id, const Node& node) {
    BDBMS_RETURN_IF_ERROR(heap_->Delete(nodes_[node_id]));
    BDBMS_ASSIGN_OR_RETURN(RecordId rid, heap_->Insert(EncodeNode(node)));
    nodes_[node_id] = rid;
    return Status::Ok();
  }

  Config config_;
  std::unique_ptr<HeapFile> heap_;
  std::vector<RecordId> nodes_;
  uint64_t size_ = 0;
};

}  // namespace bdbms

#endif  // BDBMS_INDEX_SPGIST_SPGIST_H_
