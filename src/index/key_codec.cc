#include "index/key_codec.h"

#include <cstring>

namespace bdbms {

namespace {

constexpr char kRankNull = '\x00';
constexpr char kRankNumeric = '\x01';
constexpr char kRankString = '\x02';
constexpr char kRankFence = '\x03';

void AppendBigEndian(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

}  // namespace

std::string EncodeIndexKey(const Value& v) {
  std::string key;
  switch (v.type()) {
    case DataType::kNull:
      key.push_back(kRankNull);
      break;
    case DataType::kInt: {
      key.push_back(kRankNumeric);
      uint64_t bits = static_cast<uint64_t>(v.as_int());
      AppendBigEndian(&key, bits ^ (uint64_t{1} << 63));
      break;
    }
    case DataType::kDouble: {
      key.push_back(kRankNumeric);
      double d = v.as_double();
      if (d == 0.0) d = 0.0;  // -0.0 == +0.0 must share one key
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      if (bits & (uint64_t{1} << 63)) {
        bits = ~bits;  // negative: reverse the order of magnitudes
      } else {
        bits ^= uint64_t{1} << 63;  // positive: above all negatives
      }
      AppendBigEndian(&key, bits);
      break;
    }
    case DataType::kText:
    case DataType::kSequence:
      key.push_back(kRankString);
      key.append(v.as_string());
      break;
  }
  return key;
}

std::string IndexKeyLowestNonNull() { return std::string(1, kRankNumeric); }

std::string IndexKeyUpperFence() { return std::string(1, kRankFence); }

std::string IndexKeySuccessor(const std::string& key) {
  return key + '\x00';
}

}  // namespace bdbms
