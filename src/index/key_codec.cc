#include "index/key_codec.h"

#include <cstring>

namespace bdbms {

namespace {

constexpr char kRankNull = '\x00';
constexpr char kRankNumeric = '\x01';
constexpr char kRankString = '\x02';
constexpr char kRankFence = '\x03';

constexpr char kEscape = '\x00';
constexpr char kEscapedNul = '\xFF';
constexpr char kTerminator = '\x01';

void AppendBigEndian(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

uint64_t ReadBigEndian(std::string_view data) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(data[i]);
  }
  return v;
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    out->push_back(c);
    if (c == kEscape) out->push_back(kEscapedNul);
  }
}

}  // namespace

void AppendIndexKey(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      out->push_back(kRankNull);
      break;
    case DataType::kInt: {
      out->push_back(kRankNumeric);
      uint64_t bits = static_cast<uint64_t>(v.as_int());
      AppendBigEndian(out, bits ^ (uint64_t{1} << 63));
      break;
    }
    case DataType::kDouble: {
      out->push_back(kRankNumeric);
      double d = v.as_double();
      if (d == 0.0) d = 0.0;  // -0.0 == +0.0 must share one key
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      if (bits & (uint64_t{1} << 63)) {
        bits = ~bits;  // negative: reverse the order of magnitudes
      } else {
        bits ^= uint64_t{1} << 63;  // positive: above all negatives
      }
      AppendBigEndian(out, bits);
      break;
    }
    case DataType::kText:
    case DataType::kSequence:
      out->push_back(kRankString);
      AppendEscaped(out, v.as_string());
      out->push_back(kEscape);
      out->push_back(kTerminator);
      break;
  }
}

std::string EncodeIndexKey(const Value& v) {
  std::string key;
  AppendIndexKey(&key, v);
  return key;
}

std::string EncodeCompositeKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) AppendIndexKey(&key, v);
  return key;
}

Result<std::vector<Value>> DecodeCompositeKey(
    std::string_view key, const std::vector<DataType>& types) {
  std::vector<Value> values;
  values.reserve(types.size());
  size_t off = 0;
  for (DataType type : types) {
    if (off >= key.size()) return Status::Corruption("index key too short");
    char rank = key[off++];
    if (rank == kRankNull) {
      values.push_back(Value::Null());
      continue;
    }
    if (rank == kRankNumeric) {
      if (off + 8 > key.size()) {
        return Status::Corruption("truncated numeric index key component");
      }
      uint64_t bits = ReadBigEndian(key.substr(off, 8));
      off += 8;
      if (type == DataType::kInt) {
        values.push_back(
            Value::Int(static_cast<int64_t>(bits ^ (uint64_t{1} << 63))));
      } else if (type == DataType::kDouble) {
        if (bits & (uint64_t{1} << 63)) {
          bits ^= uint64_t{1} << 63;  // positive: undo the sign flip
        } else {
          bits = ~bits;  // negative: undo the full inversion
        }
        double d;
        std::memcpy(&d, &bits, 8);
        values.push_back(Value::Double(d));
      } else {
        return Status::Corruption("numeric index key for a string column");
      }
      continue;
    }
    if (rank == kRankString) {
      if (type != DataType::kText && type != DataType::kSequence) {
        return Status::Corruption("string index key for a numeric column");
      }
      std::string s;
      bool closed = false;
      while (off < key.size()) {
        char c = key[off++];
        if (c != kEscape) {
          s.push_back(c);
          continue;
        }
        if (off >= key.size()) break;  // dangling escape: corrupt
        char next = key[off++];
        if (next == kTerminator) {
          closed = true;
          break;
        }
        if (next != kEscapedNul) {
          return Status::Corruption("bad escape in string index key");
        }
        s.push_back(kEscape);
      }
      if (!closed) {
        return Status::Corruption("unterminated string index key component");
      }
      values.push_back(type == DataType::kText
                           ? Value::Text(std::move(s))
                           : Value::Sequence(std::move(s)));
      continue;
    }
    return Status::Corruption("unknown index key rank tag");
  }
  if (off != key.size()) {
    return Status::Corruption("trailing bytes after index key components");
  }
  return values;
}

void AppendStringKeyPrefix(std::string* out, std::string_view prefix) {
  out->push_back(kRankString);
  AppendEscaped(out, prefix);
}

std::string IndexKeyLowestNonNull() { return std::string(1, kRankNumeric); }

std::string IndexKeyUpperFence() { return std::string(1, kRankFence); }

std::string IndexKeySuccessor(const std::string& key) {
  return key + '\x00';
}

std::string IndexKeyPrefixUpperBound(std::string prefix) {
  while (!prefix.empty() &&
         static_cast<unsigned char>(prefix.back()) == 0xFF) {
    prefix.pop_back();
  }
  if (prefix.empty()) return IndexKeyUpperFence();
  prefix.back() = static_cast<char>(
      static_cast<unsigned char>(prefix.back()) + 1);
  return prefix;
}

}  // namespace bdbms
