#include "plan/operator.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "bio/alignment.h"
#include "index/key_codec.h"
#include "plan/expr_eval.h"
#include "sql/ast_printer.h"

namespace bdbms {

std::string ExplainPlan(const PlanNode& root) {
  std::string out;
  std::function<void(const PlanNode&, size_t)> walk = [&](const PlanNode& node,
                                                          size_t depth) {
    out.append(depth * 2, ' ');
    out += node.Describe();
    char est[64];
    std::snprintf(est, sizeof(est), "  (rows=%.0f cost=%.1f)",
                  node.est_rows(), node.est_cost());
    out += est;
    out += '\n';
    for (const PlanNode* child : node.Children()) walk(*child, depth + 1);
  };
  walk(root, 0);
  return out;
}

Status DrainPlan(PlanNode* root, std::vector<PlanTuple>* out) {
  BDBMS_RETURN_IF_ERROR(root->Open());
  PlanTuple tuple;
  for (;;) {
    BDBMS_ASSIGN_OR_RETURN(bool more, root->Next(&tuple));
    if (!more) break;
    out->push_back(std::move(tuple));
    tuple = PlanTuple{};
  }
  return Status::Ok();
}

void DeduplicateTuples(std::vector<PlanTuple>* tuples) {
  std::map<std::string, size_t> seen;
  std::vector<PlanTuple> unique;
  for (PlanTuple& t : *tuples) {
    std::string key = TupleKey(t.values);
    auto [it, inserted] = seen.emplace(key, unique.size());
    if (inserted) {
      unique.push_back(std::move(t));
    } else {
      // Duplicate elimination unions annotations (paper §3.4).
      PlanTuple& kept = unique[it->second];
      for (size_t c = 0; c < kept.anns.size(); ++c) {
        MergeAnnotations(&kept.anns[c], t.anns[c]);
      }
      kept.has_source = false;
    }
  }
  *tuples = std::move(unique);
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

namespace {

// Appends the synthesized `_outdated` annotations (paper §5) for the
// outdated cells of `row_id`. Shared by every metadata-attaching scan so
// the rendering cannot drift between access paths — it needs only the
// RowId, which is why index-only scans keep it too.
void AppendOutdatedAnnotations(
    const ExecContext* ctx, const std::string& table_name, RowId row_id,
    std::vector<std::vector<ResultAnnotation>>* anns) {
  ColumnMask outdated = ctx->dependencies->OutdatedMask(table_name, row_id);
  if (outdated == 0) return;
  for (size_t col = 0; col < anns->size(); ++col) {
    if (outdated & ColumnBit(col)) {
      (*anns)[col].push_back(
          {kOutdatedCategory, 0,
           "<Outdated>value pending re-verification</Outdated>", "system",
           0});
    }
  }
}

}  // namespace

ScanNodeBase::ScanNodeBase(const ExecContext* ctx, Table* table,
                           std::string table_name, std::string qualifier,
                           std::vector<std::string> ann_names,
                           bool attach_metadata)
    : ctx_(ctx),
      table_(table),
      table_name_(std::move(table_name)),
      qualifier_(std::move(qualifier)),
      ann_names_(std::move(ann_names)),
      attach_metadata_(attach_metadata) {
  columns_ = QualifiedColumns(table_->schema(), qualifier_);
}

Status ScanNodeBase::Open() {
  ann_tables_.clear();
  for (const std::string& ann_name : ann_names_) {
    BDBMS_ASSIGN_OR_RETURN(AnnotationTable * at,
                           ctx_->annotations->Get(table_name_, ann_name));
    ann_tables_.push_back(at);
  }
  cache_.clear();
  pos_ = 0;
  BDBMS_ASSIGN_OR_RETURN(candidates_, CollectCandidates());
  return Status::Ok();
}

Result<bool> ScanNodeBase::Next(PlanTuple* out) {
  size_t ncols = table_->schema().num_columns();
  const MvccSnapshot* snap = ctx_->snapshot;
  while (pos_ < candidates_.size()) {
    // Periodic readahead: fault the next window of heap pages into the
    // buffer pool ahead of the scan cursor (no-op for in-memory tables).
    if ((pos_ & 63) == 0 && WantReadahead()) {
      table_->PrefetchRows(candidates_, pos_);
    }
    RowId row_id = candidates_[pos_++];
    Row row;
    if (snap != nullptr) {
      // Snapshot mode: visibility resolution replaces the liveness check,
      // and index candidates can be stale — the subclass re-verifies its
      // probe against the version the snapshot actually sees.
      BDBMS_ASSIGN_OR_RETURN(std::optional<Row> visible,
                             table_->GetVisible(row_id, *snap));
      if (!visible.has_value()) continue;
      if (!RecheckVisible(*visible)) continue;
      row = std::move(*visible);
    } else {
      if (!table_->Exists(row_id)) continue;  // stale candidate
      BDBMS_ASSIGN_OR_RETURN(row, table_->Get(row_id));
    }
    out->values = std::move(row);
    out->anns.assign(ncols, {});
    out->source_row = row_id;
    out->has_source = true;
    if (!attach_metadata_) return true;
    for (size_t a = 0; a < ann_tables_.size(); ++a) {
      AnnotationTable* at = ann_tables_[a];
      for (size_t col = 0; col < ncols; ++col) {
        for (AnnotationId id : at->IdsForCell(row_id, col, snap)) {
          auto key = std::make_pair(ann_names_[a], id);
          auto it = cache_.find(key);
          if (it == cache_.end()) {
            BDBMS_ASSIGN_OR_RETURN(std::string body, at->Body(id));
            BDBMS_ASSIGN_OR_RETURN(AnnotationMeta meta, at->Meta(id));
            ResultAnnotation ra{ann_names_[a], id, std::move(body),
                                meta.author, meta.timestamp};
            it = cache_.emplace(key, std::move(ra)).first;
          }
          out->anns[col].push_back(it->second);
        }
      }
    }
    AppendOutdatedAnnotations(ctx_, table_name_, row_id, &out->anns);
    return true;
  }
  return false;
}

std::string ScanNodeBase::DescribeSuffix() const {
  std::string out;
  if (qualifier_ != table_name_) out += " AS " + qualifier_;
  if (!ann_names_.empty()) {
    out += " ANNOTATION(";
    for (size_t i = 0; i < ann_names_.size(); ++i) {
      if (i > 0) out += ", ";
      out += ann_names_[i];
    }
    out += ")";
  }
  return out;
}

Result<std::vector<RowId>> SeqScanNode::CollectCandidates() {
  if (ctx_->snapshot != nullptr) {
    return table_->VisibleRowIds(*ctx_->snapshot);
  }
  return table_->SnapshotRowIds();
}

std::string SeqScanNode::Describe() const {
  std::string out = "SeqScan " + table_name_ + DescribeSuffix();
  if (table_->paged()) {
    // Cumulative buffer-pool counters of the paged heap — how much of the
    // table the pool served from memory vs faulted from disk.
    BufferPoolStats bs = table_->buffer_stats();
    out += " buffers(hit=" + std::to_string(bs.hits) +
           " miss=" + std::to_string(bs.misses) +
           " evict=" + std::to_string(bs.evictions) +
           " readahead=" + std::to_string(bs.readahead) + ")";
  }
  return out;
}

namespace {

// Re-evaluates an index probe against the indexed cells of a row — used by
// snapshot-mode index scans to reject candidates reached through a dead
// index entry whose key differs from the version the snapshot sees.
bool ProbeMatchesRow(const IndexProbe& probe, const std::vector<size_t>& cols,
                     const Row& row) {
  for (size_t i = 0; i < probe.eq.size(); ++i) {
    if (row[cols[i]].Compare(probe.eq[i]) != 0) return false;
  }
  if (probe.lo || probe.hi || probe.like_prefix) {
    const Value& cell = row[cols[probe.eq.size()]];
    // No SQL comparison or LIKE predicate is ever true on NULL.
    if (cell.is_null()) return false;
    if (probe.like_prefix) {
      if (!cell.is_string()) return false;
      const std::string& s = cell.as_string();
      return s.compare(0, probe.like_prefix->size(), *probe.like_prefix) == 0;
    }
    if (probe.lo) {
      int c = cell.Compare(probe.lo->value);
      if (c < 0 || (c == 0 && !probe.lo->inclusive)) return false;
    }
    if (probe.hi) {
      int c = cell.Compare(probe.hi->value);
      if (c > 0 || (c == 0 && !probe.hi->inclusive)) return false;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<RowId>> IndexScanNode::CollectCandidates() {
  return index_->Find(probe_);
}

bool IndexScanNode::RecheckVisible(const Row& row) const {
  return ProbeMatchesRow(probe_, index_->columns(), row);
}

std::string IndexScanNode::Describe() const {
  // predicate_text_ is already parenthesized per conjunct. A probe whose
  // trailing constraint is a folded LIKE prefix announces itself as
  // ScanPrefix — the access pattern differs (one contiguous key range
  // under the prefix), and the goldens pin the distinction.
  const char* label =
      probe_.like_prefix.has_value() ? "ScanPrefix " : "IndexScan ";
  return label + table_name_ + DescribeSuffix() + " USING " +
         index_->name() + " " + predicate_text_;
}

IndexOnlyScanNode::IndexOnlyScanNode(const ExecContext* ctx, Table* table,
                                     std::string table_name,
                                     std::string qualifier,
                                     bool attach_metadata,
                                     const SecondaryIndex* index,
                                     IndexProbe probe,
                                     std::string predicate_text)
    : ctx_(ctx),
      table_(table),
      table_name_(std::move(table_name)),
      qualifier_(std::move(qualifier)),
      attach_metadata_(attach_metadata),
      index_(index),
      probe_(std::move(probe)),
      predicate_text_(std::move(predicate_text)) {
  columns_ = QualifiedColumns(table_->schema(), qualifier_);
  for (size_t c : index_->columns()) {
    key_types_.push_back(table_->schema().column(c).type);
  }
}

Status IndexOnlyScanNode::Open() {
  rows_.clear();
  pos_ = 0;
  have_emitted_ = false;
  last_emitted_ = 0;
  size_t ncols = table_->schema().num_columns();
  Status decode_status = Status::Ok();
  BDBMS_RETURN_IF_ERROR(
      index_->ScanProbe(probe_, [&](std::string_view key, RowId row_id) {
        auto values = DecodeCompositeKey(key, key_types_);
        if (!values.ok()) {
          decode_status = values.status();
          return false;
        }
        Row row(ncols, Value::Null());
        for (size_t i = 0; i < index_->columns().size(); ++i) {
          row[index_->columns()[i]] = std::move((*values)[i]);
        }
        rows_.emplace_back(row_id, std::move(row));
        return true;
      }));
  BDBMS_RETURN_IF_ERROR(decode_status);
  std::sort(rows_.begin(), rows_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return Status::Ok();
}

Result<bool> IndexOnlyScanNode::Next(PlanTuple* out) {
  size_t ncols = table_->schema().num_columns();
  const MvccSnapshot* snap = ctx_->snapshot;
  while (pos_ < rows_.size()) {
    auto& [row_id, row] = rows_[pos_++];
    if (snap != nullptr) {
      // Version chains keep dead keys indexed until vacuum: only entries
      // whose decoded key cells match the version the snapshot sees are
      // real, and each surviving RowId is emitted once.
      if (have_emitted_ && row_id == last_emitted_) continue;
      BDBMS_ASSIGN_OR_RETURN(std::optional<Row> visible,
                             table_->GetVisible(row_id, *snap));
      if (!visible.has_value()) continue;
      bool matches = true;
      for (size_t c : index_->columns()) {
        if ((*visible)[c].Compare(row[c]) != 0) {
          matches = false;
          break;
        }
      }
      if (!matches) continue;
      have_emitted_ = true;
      last_emitted_ = row_id;
    } else if (!table_->Exists(row_id)) {
      continue;  // stale candidate
    }
    out->values = std::move(row);
    out->anns.assign(ncols, {});
    out->source_row = row_id;
    out->has_source = true;
    if (attach_metadata_) {
      AppendOutdatedAnnotations(ctx_, table_name_, row_id, &out->anns);
    }
    return true;
  }
  return false;
}

std::string IndexOnlyScanNode::Describe() const {
  std::string out = "IndexOnlyScan " + table_name_;
  if (qualifier_ != table_name_) out += " AS " + qualifier_;
  out += " USING " + index_->name();
  if (!predicate_text_.empty()) out += " " + predicate_text_;
  return out;
}

Result<std::vector<RowId>> SpgistScanNode::CollectCandidates() {
  return probe_.exact ? index_->FindExact(probe_.text)
                      : index_->FindPrefix(probe_.text);
}

bool SpgistScanNode::RecheckVisible(const Row& row) const {
  const Value& cell = row[index_->column()];
  if (!cell.is_string()) return false;
  const std::string& s = cell.as_string();
  if (probe_.exact) return s == probe_.text;
  return s.compare(0, probe_.text.size(), probe_.text) == 0;
}

std::string SpgistScanNode::Describe() const {
  return "SpgistScan " + table_name_ + DescribeSuffix() + " USING " +
         index_->name() + " " + predicate_text_;
}

Result<std::vector<RowId>> SpgistRegexScanNode::CollectCandidates() {
  return index_->FindRegex(program_);
}

bool SpgistRegexScanNode::RecheckVisible(const Row& row) const {
  const Value& cell = row[index_->column()];
  if (!cell.is_string()) return false;
  return program_.FullMatch(cell.as_string());
}

std::string SpgistRegexScanNode::Describe() const {
  return "SpgistRegexScan " + table_name_ + DescribeSuffix() + " USING " +
         index_->name() + " " + predicate_text_;
}

Result<std::vector<RowId>> SpgistTopKScanNode::CollectCandidates() {
  // Visibility is resolved inside the traversal: a stale index entry whose
  // key no longer matches the visible row must not occupy one of the k
  // slots, or a genuinely close row would be cut off.
  const MvccSnapshot* snap = ctx_->snapshot;
  auto keep = [&](RowId row_id, const std::string& key) -> bool {
    if (snap != nullptr) {
      auto visible = table_->GetVisible(row_id, *snap);
      if (!visible.ok() || !visible->has_value()) return false;
      const Value& cell = (**visible)[index_->column()];
      return cell.is_string() && cell.as_string() == key;
    }
    if (!table_->Exists(row_id)) return false;
    auto row = table_->Get(row_id);
    if (!row.ok()) return false;
    const Value& cell = (*row)[index_->column()];
    return cell.is_string() && cell.as_string() == key;
  };
  BDBMS_ASSIGN_OR_RETURN(std::vector<SequenceIndex::Neighbor> nearest,
                         index_->FindNearest(target_, k_, keep));
  std::vector<RowId> rows;
  rows.reserve(nearest.size());
  for (const SequenceIndex::Neighbor& n : nearest) rows.push_back(n.row);
  return rows;
}

std::string SpgistTopKScanNode::Describe() const {
  return "SpgistTopKScan " + table_name_ + DescribeSuffix() + " USING " +
         index_->name() + " " + predicate_text_;
}

Result<std::vector<RowId>> SpgistAlignScanNode::CollectCandidates() {
  return index_->FindAlign(query_, min_score_, strict_);
}

bool SpgistAlignScanNode::RecheckVisible(const Row& row) const {
  const Value& cell = row[index_->column()];
  if (!cell.is_string()) return false;
  int score = SmithWatermanScore(cell.as_string(), query_);
  return strict_ ? score > min_score_ : score >= min_score_;
}

std::string SpgistAlignScanNode::Describe() const {
  return "SpgistAlignScan " + table_name_ + DescribeSuffix() + " USING " +
         index_->name() + " " + predicate_text_;
}

Result<std::vector<RowId>> AnnIntervalScanNode::CollectCandidates() {
  const MvccSnapshot* snap = ctx_->snapshot;
  std::set<RowId> rows;
  RowId extent = table_->next_row_id();
  for (const std::string& ann_name : ann_names_) {
    BDBMS_ASSIGN_OR_RETURN(AnnotationTable * at,
                           ctx_->annotations->Get(table_name_, ann_name));
    for (const auto& [begin, end] : at->LiveRowIntervals(snap)) {
      RowId capped = std::min(end, extent == 0 ? end : extent - 1);
      if (snap != nullptr) {
        for (RowId r : table_->VisibleRowIdsInRange(begin, capped, *snap)) {
          rows.insert(r);
        }
      } else {
        for (RowId r : table_->RowIdsInRange(begin, capped)) rows.insert(r);
      }
    }
  }
  // Outdated cells synthesize annotations too, so those rows can also
  // satisfy an AWHERE condition.
  const OutdatedBitmap* bitmap = ctx_->dependencies->FindBitmap(table_name_);
  if (bitmap != nullptr) {
    for (const auto& [row, mask] : bitmap->entries()) {
      if (mask == 0) continue;
      if (snap != nullptr) {
        BDBMS_ASSIGN_OR_RETURN(std::optional<Row> visible,
                               table_->GetVisible(row, *snap));
        if (visible.has_value()) rows.insert(row);
      } else if (table_->Exists(row)) {
        rows.insert(row);
      }
    }
  }
  return std::vector<RowId>(rows.begin(), rows.end());
}

std::string AnnIntervalScanNode::Describe() const {
  return "AnnIntervalScan " + table_name_ + DescribeSuffix() +
         " (annotated row intervals + outdated rows)";
}

// ---------------------------------------------------------------------------
// Streaming operators
// ---------------------------------------------------------------------------

FilterNode::FilterNode(PlanNodePtr child, std::vector<const Expr*> predicates)
    : child_(std::move(child)), predicates_(std::move(predicates)) {
  columns_ = child_->columns();
}

Status FilterNode::Open() { return child_->Open(); }

Result<bool> FilterNode::Next(PlanTuple* out) {
  for (;;) {
    BDBMS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    bool keep = true;
    for (const Expr* predicate : predicates_) {
      BDBMS_ASSIGN_OR_RETURN(Value v, EvalScalar(*predicate, columns_, *out));
      BDBMS_ASSIGN_OR_RETURN(keep, Truthy(v));
      if (!keep) break;
    }
    if (keep) return true;
  }
}

std::string FilterNode::Describe() const {
  std::string out = "Filter ";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += ExprToString(*predicates_[i]);
  }
  return out;
}

std::vector<const PlanNode*> FilterNode::Children() const {
  return {child_.get()};
}

AWhereNode::AWhereNode(PlanNodePtr child, const Expr* condition)
    : child_(std::move(child)), condition_(condition) {
  columns_ = child_->columns();
}

Status AWhereNode::Open() { return child_->Open(); }

Result<bool> AWhereNode::Next(PlanTuple* out) {
  for (;;) {
    BDBMS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    BDBMS_ASSIGN_OR_RETURN(bool keep, TupleAnnMatch(*condition_, *out));
    if (keep) return true;
  }
}

std::string AWhereNode::Describe() const {
  return "AWhere " + ExprToString(*condition_);
}

std::vector<const PlanNode*> AWhereNode::Children() const {
  return {child_.get()};
}

AnnotFilterNode::AnnotFilterNode(PlanNodePtr child, const Expr* condition)
    : child_(std::move(child)), condition_(condition) {
  columns_ = child_->columns();
}

Status AnnotFilterNode::Open() { return child_->Open(); }

Result<bool> AnnotFilterNode::Next(PlanTuple* out) {
  BDBMS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  for (auto& per_col : out->anns) {
    std::vector<ResultAnnotation> kept;
    for (ResultAnnotation& a : per_col) {
      BDBMS_ASSIGN_OR_RETURN(Value v, EvalAnnExpr(*condition_, a));
      BDBMS_ASSIGN_OR_RETURN(bool keep, Truthy(v));
      if (keep) kept.push_back(std::move(a));
    }
    per_col = std::move(kept);
  }
  return true;
}

std::string AnnotFilterNode::Describe() const {
  return "AnnotFilter " + ExprToString(*condition_);
}

std::vector<const PlanNode*> AnnotFilterNode::Children() const {
  return {child_.get()};
}

PromoteNode::PromoteNode(PlanNodePtr child, std::vector<Mapping> mappings)
    : child_(std::move(child)), mappings_(std::move(mappings)) {
  columns_ = child_->columns();
}

Status PromoteNode::Open() { return child_->Open(); }

Result<bool> PromoteNode::Next(PlanTuple* out) {
  BDBMS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  // Merge from a snapshot of the input's annotations: PROMOTE reads the
  // operand's own columns, so one mapping's target must never feed
  // another mapping's source.
  std::vector<std::vector<ResultAnnotation>> source_anns = out->anns;
  for (const auto& [target, sources] : mappings_) {
    for (size_t src : sources) {
      if (src == target) continue;  // self-promote is a no-op
      MergeAnnotations(&out->anns[target], source_anns[src]);
    }
  }
  return true;
}

std::string PromoteNode::Describe() const {
  std::string out = "Promote";
  for (size_t m = 0; m < mappings_.size(); ++m) {
    out += m == 0 ? " " : ", ";
    out += columns_[mappings_[m].first].name + " <- (";
    const auto& sources = mappings_[m].second;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (i > 0) out += ", ";
      out += columns_[sources[i]].name;
    }
    out += ")";
  }
  return out;
}

std::vector<const PlanNode*> PromoteNode::Children() const {
  return {child_.get()};
}

ProjectNode::ProjectNode(PlanNodePtr child, std::vector<Item> items)
    : child_(std::move(child)), items_(std::move(items)) {
  for (const Item& item : items_) {
    columns_.push_back({item.name, item.qualifier});
  }
}

Status ProjectNode::Open() { return child_->Open(); }

Result<bool> ProjectNode::Next(PlanTuple* out) {
  PlanTuple in;
  BDBMS_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  out->values.clear();
  out->anns.clear();
  out->source_row = in.source_row;
  out->has_source = in.has_source;
  for (const Item& item : items_) {
    if (item.is_direct) {
      out->values.push_back(in.values[item.direct_index]);
      out->anns.push_back(in.anns[item.direct_index]);
    } else {
      BDBMS_ASSIGN_OR_RETURN(Value v,
                             EvalScalar(*item.expr, child_->columns(), in));
      out->values.push_back(std::move(v));
      out->anns.emplace_back();
    }
    for (size_t src : item.promote_sources) {
      MergeAnnotations(&out->anns.back(), in.anns[src]);
    }
  }
  return true;
}

std::string ProjectNode::Describe() const {
  std::string out = "Project [";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += items_[i].is_direct || items_[i].expr == nullptr
               ? items_[i].name
               : ExprToString(*items_[i].expr);
  }
  out += "]";
  return out;
}

std::vector<const PlanNode*> ProjectNode::Children() const {
  return {child_.get()};
}

HashAggregateNode::HashAggregateNode(PlanNodePtr child, const SelectStmt* stmt,
                                     std::vector<size_t> key_columns,
                                     std::vector<std::string> column_names)
    : child_(std::move(child)),
      stmt_(stmt),
      key_columns_(std::move(key_columns)) {
  for (std::string& name : column_names) {
    columns_.push_back({std::move(name), ""});
  }
}

Status HashAggregateNode::Open() {
  results_.clear();
  pos_ = 0;
  std::vector<PlanTuple> input;
  BDBMS_RETURN_IF_ERROR(DrainPlan(child_.get(), &input));
  const std::vector<BoundColumn>& in_cols = child_->columns();

  // Group tuples preserving first-seen order.
  std::unordered_map<std::string, size_t> group_index;
  std::vector<std::vector<const PlanTuple*>> groups;
  for (const PlanTuple& t : input) {
    std::string key;
    for (size_t k : key_columns_) t.values[k].EncodeTo(&key);
    auto [it, inserted] = group_index.emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(&t);
  }
  // An aggregate-only query over an empty input still yields one group.
  if (groups.empty() && stmt_->group_by.empty()) groups.emplace_back();

  for (const auto& group : groups) {
    if (stmt_->having) {
      BDBMS_ASSIGN_OR_RETURN(Value v,
                             EvalGroupExpr(*stmt_->having, in_cols, group));
      BDBMS_ASSIGN_OR_RETURN(bool keep, Truthy(v));
      if (!keep) continue;
    }
    if (stmt_->ahaving) {
      bool any = false;
      for (const PlanTuple* t : group) {
        BDBMS_ASSIGN_OR_RETURN(any, TupleAnnMatch(*stmt_->ahaving, *t));
        if (any) break;
      }
      if (!any) continue;
    }
    PlanTuple out_tuple;
    for (const SelectItem& item : stmt_->items) {
      BDBMS_ASSIGN_OR_RETURN(Value v,
                             EvalGroupExpr(*item.expr, in_cols, group));
      out_tuple.values.push_back(std::move(v));
      // Annotations: union across the group of the referenced column's
      // annotations (group/merge operators union annotations, §3.4).
      std::vector<ResultAnnotation> anns;
      const Expr* col_source = nullptr;
      if (item.expr->kind == ExprKind::kColumnRef) {
        col_source = item.expr.get();
      } else if (item.expr->kind == ExprKind::kAggregate && item.expr->child &&
                 item.expr->child->kind == ExprKind::kColumnRef) {
        col_source = item.expr->child.get();
      }
      if (col_source != nullptr) {
        auto bound =
            BindColumn(in_cols, col_source->qualifier, col_source->column);
        if (bound.ok()) {
          for (const PlanTuple* t : group) {
            MergeAnnotations(&anns, t->anns[*bound]);
          }
        }
      }
      for (const std::string& col : item.promote_columns) {
        BDBMS_ASSIGN_OR_RETURN(size_t idx, BindColumn(in_cols, "", col));
        for (const PlanTuple* t : group) {
          MergeAnnotations(&anns, t->anns[idx]);
        }
      }
      out_tuple.anns.push_back(std::move(anns));
    }
    results_.push_back(std::move(out_tuple));
  }
  return Status::Ok();
}

Result<bool> HashAggregateNode::Next(PlanTuple* out) {
  if (pos_ >= results_.size()) return false;
  *out = std::move(results_[pos_++]);
  return true;
}

std::string HashAggregateNode::Describe() const {
  std::string out = "HashAggregate";
  if (!stmt_->group_by.empty()) {
    out += " keys=[";
    for (size_t i = 0; i < stmt_->group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt_->group_by[i];
    }
    out += "]";
  }
  out += " [";
  for (size_t i = 0; i < stmt_->items.size(); ++i) {
    if (i > 0) out += ", ";
    out += ExprToString(*stmt_->items[i].expr);
  }
  out += "]";
  if (stmt_->having) out += " HAVING " + ExprToString(*stmt_->having);
  if (stmt_->ahaving) out += " AHAVING " + ExprToString(*stmt_->ahaving);
  return out;
}

std::vector<const PlanNode*> HashAggregateNode::Children() const {
  return {child_.get()};
}

DistinctNode::DistinctNode(PlanNodePtr child) : child_(std::move(child)) {
  columns_ = child_->columns();
}

Status DistinctNode::Open() {
  results_.clear();
  pos_ = 0;
  BDBMS_RETURN_IF_ERROR(DrainPlan(child_.get(), &results_));
  DeduplicateTuples(&results_);
  return Status::Ok();
}

Result<bool> DistinctNode::Next(PlanTuple* out) {
  if (pos_ >= results_.size()) return false;
  *out = std::move(results_[pos_++]);
  return true;
}

std::string DistinctNode::Describe() const { return "Distinct"; }

std::vector<const PlanNode*> DistinctNode::Children() const {
  return {child_.get()};
}

SortNode::SortNode(PlanNodePtr child, std::vector<Key> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  columns_ = child_->columns();
}

Status SortNode::Open() {
  results_.clear();
  pos_ = 0;
  BDBMS_RETURN_IF_ERROR(DrainPlan(child_.get(), &results_));
  bool has_expr = false;
  for (const Key& k : keys_) has_expr |= k.expr != nullptr;
  if (!has_expr) {
    std::stable_sort(results_.begin(), results_.end(),
                     [&](const PlanTuple& a, const PlanTuple& b) {
                       for (const Key& k : keys_) {
                         int c = a.values[k.column].Compare(b.values[k.column]);
                         if (c != 0) return k.descending ? c > 0 : c < 0;
                       }
                       return false;
                     });
    return Status::Ok();
  }
  // Expression keys can fail (type errors), so evaluate them once per
  // tuple up front rather than inside the comparator.
  struct Decorated {
    std::vector<Value> keys;
    PlanTuple tuple;
  };
  std::vector<Decorated> rows;
  rows.reserve(results_.size());
  for (PlanTuple& t : results_) {
    Decorated d;
    d.keys.reserve(keys_.size());
    for (const Key& k : keys_) {
      if (k.expr != nullptr) {
        BDBMS_ASSIGN_OR_RETURN(Value v, EvalScalar(*k.expr, columns_, t));
        d.keys.push_back(std::move(v));
      } else {
        d.keys.push_back(t.values[k.column]);
      }
    }
    d.tuple = std::move(t);
    rows.push_back(std::move(d));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const Decorated& a, const Decorated& b) {
                     for (size_t i = 0; i < keys_.size(); ++i) {
                       int c = a.keys[i].Compare(b.keys[i]);
                       if (c != 0) return keys_[i].descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  results_.clear();
  for (Decorated& d : rows) results_.push_back(std::move(d.tuple));
  return Status::Ok();
}

Result<bool> SortNode::Next(PlanTuple* out) {
  if (pos_ >= results_.size()) return false;
  *out = std::move(results_[pos_++]);
  return true;
}

std::string SortNode::Describe() const {
  std::string out = "Sort [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    if (keys_[i].expr != nullptr) {
      out += ExprToString(*keys_[i].expr);
    } else {
      out += columns_[keys_[i].column].name;
    }
    out += keys_[i].descending ? " DESC" : " ASC";
  }
  out += "]";
  return out;
}

std::vector<const PlanNode*> SortNode::Children() const {
  return {child_.get()};
}

LimitNode::LimitNode(PlanNodePtr child, uint64_t limit)
    : child_(std::move(child)), limit_(limit) {
  columns_ = child_->columns();
}

Status LimitNode::Open() {
  produced_ = 0;
  return child_->Open();
}

Result<bool> LimitNode::Next(PlanTuple* out) {
  if (produced_ >= limit_) return false;
  BDBMS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++produced_;
  return true;
}

std::string LimitNode::Describe() const {
  return "Limit " + std::to_string(limit_);
}

std::vector<const PlanNode*> LimitNode::Children() const {
  return {child_.get()};
}

NestedLoopJoinNode::NestedLoopJoinNode(PlanNodePtr left, PlanNodePtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  columns_ = left_->columns();
  const auto& right_cols = right_->columns();
  columns_.insert(columns_.end(), right_cols.begin(), right_cols.end());
}

Status NestedLoopJoinNode::Open() {
  right_tuples_.clear();
  have_left_ = false;
  right_pos_ = 0;
  BDBMS_RETURN_IF_ERROR(left_->Open());
  BDBMS_RETURN_IF_ERROR(DrainPlan(right_.get(), &right_tuples_));
  return Status::Ok();
}

Result<bool> NestedLoopJoinNode::Next(PlanTuple* out) {
  for (;;) {
    if (!have_left_ || right_pos_ >= right_tuples_.size()) {
      BDBMS_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
      if (!more) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    if (right_tuples_.empty()) {
      have_left_ = false;
      continue;
    }
    const PlanTuple& rhs = right_tuples_[right_pos_++];
    out->values = current_left_.values;
    out->values.insert(out->values.end(), rhs.values.begin(),
                       rhs.values.end());
    out->anns = current_left_.anns;
    out->anns.insert(out->anns.end(), rhs.anns.begin(), rhs.anns.end());
    out->source_row = 0;
    out->has_source = false;
    return true;
  }
}

std::string NestedLoopJoinNode::Describe() const { return "NestedLoopJoin"; }

std::vector<const PlanNode*> NestedLoopJoinNode::Children() const {
  return {left_.get(), right_.get()};
}

HashJoinNode::HashJoinNode(PlanNodePtr left, PlanNodePtr right,
                           std::vector<std::pair<size_t, size_t>> keys,
                           std::string predicate_text)
    : left_(std::move(left)),
      right_(std::move(right)),
      keys_(std::move(keys)),
      predicate_text_(std::move(predicate_text)) {
  columns_ = left_->columns();
  const auto& right_cols = right_->columns();
  columns_.insert(columns_.end(), right_cols.begin(), right_cols.end());
  for (const auto& [l, r] : keys_) {
    left_cols_.push_back(l);
    right_cols_.push_back(r);
  }
}

bool HashJoinNode::EncodeKey(const PlanTuple& tuple,
                             const std::vector<size_t>& cols,
                             std::string* out) {
  out->clear();
  for (size_t c : cols) {
    const Value& v = tuple.values[c];
    if (v.is_null()) return false;
    if (v.is_numeric()) {
      double d = v.as_double();
      if (d == 0.0) d = 0.0;  // fold -0.0 into +0.0 (they compare equal)
      out->push_back('n');
      out->append(reinterpret_cast<const char*>(&d), sizeof(d));
    } else {
      const std::string& s = v.as_string();
      uint64_t len = s.size();
      out->push_back('s');
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
    }
  }
  return true;
}

Status HashJoinNode::Open() {
  build_.clear();
  have_left_ = false;
  bucket_ = nullptr;
  bucket_pos_ = 0;
  BDBMS_RETURN_IF_ERROR(left_->Open());
  std::vector<PlanTuple> right_tuples;
  BDBMS_RETURN_IF_ERROR(DrainPlan(right_.get(), &right_tuples));
  std::string key;
  for (PlanTuple& t : right_tuples) {
    if (!EncodeKey(t, right_cols_, &key)) continue;  // NULL key never joins
    build_[key].push_back(std::move(t));
  }
  return Status::Ok();
}

Result<bool> HashJoinNode::Next(PlanTuple* out) {
  std::string key;
  for (;;) {
    if (!have_left_ || bucket_ == nullptr || bucket_pos_ >= bucket_->size()) {
      BDBMS_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
      if (!more) return false;
      have_left_ = true;
      bucket_ = nullptr;
      bucket_pos_ = 0;
      if (!EncodeKey(current_left_, left_cols_, &key)) continue;
      auto it = build_.find(key);
      if (it == build_.end()) continue;
      bucket_ = &it->second;
    }
    while (bucket_pos_ < bucket_->size()) {
      const PlanTuple& rhs = (*bucket_)[bucket_pos_++];
      // Re-verify with the engine's comparison: hash equality is
      // necessary but (for numerics beyond 2^53) not sufficient.
      bool match = true;
      for (const auto& [l, r] : keys_) {
        if (current_left_.values[l].Compare(rhs.values[r]) != 0) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      out->values = current_left_.values;
      out->values.insert(out->values.end(), rhs.values.begin(),
                         rhs.values.end());
      out->anns = current_left_.anns;
      out->anns.insert(out->anns.end(), rhs.anns.begin(), rhs.anns.end());
      out->source_row = 0;
      out->has_source = false;
      return true;
    }
  }
}

std::string HashJoinNode::Describe() const {
  return "HashJoin " + predicate_text_;
}

std::vector<const PlanNode*> HashJoinNode::Children() const {
  return {left_.get(), right_.get()};
}

SetOpNode::SetOpNode(SetOpKind kind, PlanNodePtr left, PlanNodePtr right)
    : kind_(kind), left_(std::move(left)), right_(std::move(right)) {
  columns_ = left_->columns();
}

Status SetOpNode::Open() {
  results_.clear();
  pos_ = 0;
  std::vector<PlanTuple> lhs, rhs;
  BDBMS_RETURN_IF_ERROR(DrainPlan(left_.get(), &lhs));
  BDBMS_RETURN_IF_ERROR(DrainPlan(right_.get(), &rhs));
  if (left_->columns().size() != right_->columns().size()) {
    return Status::InvalidArgument(
        "set operation requires same number of columns");
  }
  // Tuples match on values; annotations of merged tuples are unioned
  // (paper §3.4).
  std::map<std::string, std::vector<PlanTuple*>> rhs_index;
  for (PlanTuple& t : rhs) {
    rhs_index[TupleKey(t.values)].push_back(&t);
  }
  switch (kind_) {
    case SetOpKind::kIntersect:
      for (PlanTuple& t : lhs) {
        auto it = rhs_index.find(TupleKey(t.values));
        if (it == rhs_index.end()) continue;
        for (PlanTuple* match : it->second) {
          for (size_t c = 0; c < t.anns.size(); ++c) {
            MergeAnnotations(&t.anns[c], match->anns[c]);
          }
        }
        t.has_source = false;
        results_.push_back(std::move(t));
      }
      DeduplicateTuples(&results_);
      break;
    case SetOpKind::kExcept:
      for (PlanTuple& t : lhs) {
        if (rhs_index.count(TupleKey(t.values))) continue;
        results_.push_back(std::move(t));
      }
      DeduplicateTuples(&results_);
      break;
    case SetOpKind::kUnion:
      for (PlanTuple& t : lhs) results_.push_back(std::move(t));
      for (PlanTuple& t : rhs) results_.push_back(std::move(t));
      DeduplicateTuples(&results_);
      break;
    case SetOpKind::kNone:
      return Status::Internal("SetOpNode with kNone");
  }
  return Status::Ok();
}

Result<bool> SetOpNode::Next(PlanTuple* out) {
  if (pos_ >= results_.size()) return false;
  *out = std::move(results_[pos_++]);
  return true;
}

std::string SetOpNode::Describe() const {
  switch (kind_) {
    case SetOpKind::kUnion: return "Union";
    case SetOpKind::kIntersect: return "Intersect";
    case SetOpKind::kExcept: return "Except";
    case SetOpKind::kNone: break;
  }
  return "SetOp?";
}

std::vector<const PlanNode*> SetOpNode::Children() const {
  return {left_.get(), right_.get()};
}

}  // namespace bdbms
