#ifndef BDBMS_PLAN_PLANNER_H_
#define BDBMS_PLAN_PLANNER_H_

#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "plan/operator.h"
#include "sql/ast.h"

namespace bdbms {

// Lowers statements into physical operator trees, choosing access paths
// and join order with the cost model over the catalog's ANALYZE
// statistics (src/plan/cost_model.*, docs/planner.md):
//  * WHERE is split into AND-conjuncts; conjuncts touching exactly one
//    FROM entry are pushed below the join onto that entry's scan;
//  * every candidate index probe — per-index leading-column equalities
//    plus one trailing range or LIKE-prefix (ScanPrefix) constraint on
//    B+-tree indexes, prefix/exact descents on SP-GiST sequence indexes
//    (SpgistScan) — is costed against the sequential scan, and the
//    cheapest alternative wins, consuming its conjuncts;
//  * `col MATCHES '<regex>'` and leading-wildcard LIKE patterns on a
//    sequence-indexed column descend the trie NFA-guided
//    (SpgistRegexScan); `ALIGN(col, 'seq') >= s` lower bounds take the
//    shared-prefix Smith–Waterman descent (SpgistAlignScan);
//  * `ORDER BY DISTANCE(col, 'seq') LIMIT k` over a sequence-indexed
//    column becomes a best-first ranked trie traversal with the LIMIT
//    pushed into the scan (SpgistTopKScan);
//  * a single-table SELECT whose referenced columns are all key columns
//    of an index answers from the index keys alone (IndexOnlyScan, no
//    base-table fetches), with or without a probe;
//  * equi-join conjuncts (`a.col = b.col`) become HashJoin keys; the
//    join order is chosen greedily by estimated cardinality, with
//    NestedLoopJoin kept for predicate-less (cross product) joins;
//  * a single-table SELECT with AWHERE and no index probe scans only the
//    row intervals covered by live annotations (plus outdated rows),
//    courtesy of the annotation interval structures;
//  * everything unconsumed stays in a Filter above.
// Every node carries estimated rows/cost, which EXPLAIN prints.
class Planner {
 public:
  Planner(const ExecContext* ctx, std::string user)
      : ctx_(ctx), user_(std::move(user)) {}

  // Full SELECT pipeline: scans, join, WHERE/AWHERE, aggregation or
  // projection (with PROMOTE), DISTINCT, FILTER, ORDER BY, LIMIT and set
  // operations. Performs catalog and SELECT-privilege validation.
  Result<PlanNodePtr> PlanSelect(const SelectStmt& stmt);

  // Scan + WHERE + AWHERE of a single-table SELECT, without projection —
  // the row-targeting pipeline of the annotation commands (the caller
  // reads source RowIds and computes column masks itself).
  Result<PlanNodePtr> PlanTargetScan(const SelectStmt& stmt);

  // Index-aware scan + WHERE for UPDATE/DELETE row targeting. No
  // annotation attachment, no privilege check (the caller already
  // checked the DML privilege).
  Result<PlanNodePtr> PlanDmlScan(const std::string& table, const Expr* where);

  // EXPLAIN rendering for SELECT/UPDATE/DELETE statements.
  Result<std::string> ExplainStatement(const Statement& stmt);

 private:
  // Scans + join + Filter + AWhere (steps shared by PlanSelect and
  // PlanTargetScan). `allow_index_only` gates the covering-index path
  // (annotation commands and DML always fetch base rows).
  Result<PlanNodePtr> PlanFromWhere(const SelectStmt& stmt,
                                    bool allow_index_only);

  // One FROM entry with its pushed conjuncts; chooses the access path.
  // `covering_columns` (nullable) is the statement's full referenced-
  // column set; an index covering it may answer without row fetches.
  Result<PlanNodePtr> BuildScan(const TableRef& ref,
                                std::vector<const Expr*> conjuncts,
                                bool attach_metadata, bool try_ann_interval,
                                const std::vector<size_t>* covering_columns);

  // set-op recursion: rhs plans suppress their own LIMIT (it applies to
  // the combined result, like a trailing ORDER BY).
  Result<PlanNodePtr> PlanSelectImpl(const SelectStmt& stmt, bool as_set_rhs);

  // Ranked trie traversal: a single-table SELECT shaped exactly
  // `... ORDER BY DISTANCE(col, 'seq') [ASC] LIMIT k` with no filtering
  // clauses, where `col` carries a sequence index, scans the trie
  // best-first and stops after the k closest rows (plus ties) — the LIMIT
  // is pushed into the scan. Returns nullptr when the statement does not
  // match; the caller falls back to sort-the-world.
  Result<PlanNodePtr> TryPlanTopKScan(const SelectStmt& stmt);

  const ExecContext* ctx_;
  std::string user_;
};

}  // namespace bdbms

#endif  // BDBMS_PLAN_PLANNER_H_
