#ifndef BDBMS_PLAN_OPERATOR_H_
#define BDBMS_PLAN_OPERATOR_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "annot/annotation_table.h"
#include "exec/exec_context.h"
#include "index/secondary_index.h"
#include "index/sequence_index.h"
#include "index/spgist/regex.h"
#include "plan/plan_tuple.h"
#include "sql/ast.h"

namespace bdbms {

// A physical operator in the Volcano iterator model: Open() prepares the
// node, each Next() produces one tuple, so relations stream through the
// pipeline instead of being materialized wholesale (pipeline breakers —
// Sort, HashAggregate, Distinct, SetOp and the build side of joins —
// materialize only what they must). Every operator propagates annotations
// under the paper's §3.3/§3.4 rules.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  virtual Status Open() = 0;
  // Produces the next tuple into `*out`; returns false when exhausted.
  virtual Result<bool> Next(PlanTuple* out) = 0;

  // One EXPLAIN line, without indentation (estimates are appended by
  // ExplainPlan).
  virtual std::string Describe() const = 0;
  virtual std::vector<const PlanNode*> Children() const { return {}; }

  const std::vector<BoundColumn>& columns() const { return columns_; }

  // Planner estimates (docs/planner.md): output cardinality and total
  // cost in abstract work units, shown per node by EXPLAIN.
  double est_rows() const { return est_rows_; }
  double est_cost() const { return est_cost_; }
  void SetEstimate(double rows, double total_cost) {
    est_rows_ = rows;
    est_cost_ = total_cost;
  }

 protected:
  std::vector<BoundColumn> columns_;
  double est_rows_ = 0.0;
  double est_cost_ = 0.0;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

// Renders the plan tree, two spaces of indent per level.
std::string ExplainPlan(const PlanNode& root);

// Open() + Next()-until-exhausted into `out`.
Status DrainPlan(PlanNode* root, std::vector<PlanTuple>* out);

// Duplicate elimination joining annotations of merged tuples (§3.4).
void DeduplicateTuples(std::vector<PlanTuple>* tuples);

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

// Base of the access methods: subclasses produce the candidate RowId list;
// the base streams the rows, attaching requested annotations and the
// synthesized _outdated annotations (paper §5) when `attach_metadata`.
class ScanNodeBase : public PlanNode {
 public:
  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;

 protected:
  ScanNodeBase(const ExecContext* ctx, Table* table, std::string table_name,
               std::string qualifier, std::vector<std::string> ann_names,
               bool attach_metadata);

  // Live-row candidates, ascending by RowId (supersets are fine; rows
  // deleted since planning are skipped).
  virtual Result<std::vector<RowId>> CollectCandidates() = 0;

  // Snapshot-mode re-check: index access paths can hand back a row-id
  // through a dead index entry whose key no longer matches the version the
  // snapshot sees (the chain keeps old keys indexed until vacuum). The
  // subclass re-verifies its probe against the *visible* row's indexed
  // cells; the base scan drops rows that fail. The default (full scans,
  // interval scans) accepts everything.
  virtual bool RecheckVisible(const Row& /*row*/) const { return true; }

  // " AS alias" / " ANNOTATION(...)" decoration shared by subclasses.
  std::string DescribeSuffix() const;

  // Whether Next() should prefetch upcoming candidates' heap pages.
  // Only sequential scans benefit: their candidate order matches page
  // order, so the next candidates name the next pages. Index probes
  // visit pages in key order, where readahead just pollutes the pool.
  virtual bool WantReadahead() const { return false; }

  const ExecContext* ctx_;
  Table* table_;
  std::string table_name_;
  std::string qualifier_;
  std::vector<std::string> ann_names_;
  bool attach_metadata_;

 private:
  std::vector<AnnotationTable*> ann_tables_;
  // One fetch per annotation even when it covers many cells.
  std::map<std::pair<std::string, AnnotationId>, ResultAnnotation> cache_;
  std::vector<RowId> candidates_;
  size_t pos_ = 0;
};

// Full-table scan in RowId order.
class SeqScanNode : public ScanNodeBase {
 public:
  SeqScanNode(const ExecContext* ctx, Table* table, std::string table_name,
              std::string qualifier, std::vector<std::string> ann_names,
              bool attach_metadata)
      : ScanNodeBase(ctx, table, std::move(table_name), std::move(qualifier),
                     std::move(ann_names), attach_metadata) {}

  std::string Describe() const override;

 protected:
  Result<std::vector<RowId>> CollectCandidates() override;
  bool WantReadahead() const override { return true; }
};

// B+-tree probe: leading-column equalities plus at most one trailing
// range or string-prefix constraint (IndexProbe, secondary_index.h).
// Candidates come from the secondary index; output stays in RowId order.
// A probe whose trailing constraint is a LIKE prefix renders as
// `ScanPrefix` in EXPLAIN.
class IndexScanNode : public ScanNodeBase {
 public:
  IndexScanNode(const ExecContext* ctx, Table* table, std::string table_name,
                std::string qualifier, std::vector<std::string> ann_names,
                bool attach_metadata, const SecondaryIndex* index,
                IndexProbe probe, std::string predicate_text)
      : ScanNodeBase(ctx, table, std::move(table_name), std::move(qualifier),
                     std::move(ann_names), attach_metadata),
        index_(index),
        probe_(std::move(probe)),
        predicate_text_(std::move(predicate_text)) {}

  std::string Describe() const override;

 protected:
  Result<std::vector<RowId>> CollectCandidates() override;
  bool RecheckVisible(const Row& row) const override;

 private:
  const SecondaryIndex* index_;
  IndexProbe probe_;
  std::string predicate_text_;
};

// Index-only scan: answers the query from the index's own keys, never
// fetching base-table rows. Eligible when the index's key columns cover
// every column the statement references (the planner checks); uncovered
// columns are padded with NULL but are provably never read. Output tuples
// stay full table width so the column space matches the other scans, and
// stay in RowId order. Synthesized `_outdated` annotations still attach
// (they need only the RowId); regular annotation attachment disqualifies
// the path at planning time.
class IndexOnlyScanNode : public PlanNode {
 public:
  IndexOnlyScanNode(const ExecContext* ctx, Table* table,
                    std::string table_name, std::string qualifier,
                    bool attach_metadata, const SecondaryIndex* index,
                    IndexProbe probe, std::string predicate_text);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;

 private:
  const ExecContext* ctx_;
  Table* table_;
  std::string table_name_;
  std::string qualifier_;
  bool attach_metadata_;
  const SecondaryIndex* index_;
  IndexProbe probe_;
  std::string predicate_text_;
  std::vector<DataType> key_types_;      // declared types of the key columns
  std::vector<std::pair<RowId, Row>> rows_;  // decoded, RowId-ascending
  size_t pos_ = 0;
  // Snapshot-mode dedup: version chains keep old keys indexed until
  // vacuum, so one RowId can surface through several entries; emit it
  // once (rows_ is RowId-sorted, so tracking the last emitted id works).
  bool have_emitted_ = false;
  RowId last_emitted_ = 0;
};

// SP-GiST trie probe over a sequence index: prefix (LIKE 'p%') or exact
// match on one string column. Candidates come from the trie; output stays
// in RowId order.
class SpgistScanNode : public ScanNodeBase {
 public:
  struct Probe {
    bool exact = false;  // false: prefix match
    std::string text;
  };

  SpgistScanNode(const ExecContext* ctx, Table* table, std::string table_name,
                 std::string qualifier, std::vector<std::string> ann_names,
                 bool attach_metadata, const SequenceIndex* index,
                 Probe probe, std::string predicate_text)
      : ScanNodeBase(ctx, table, std::move(table_name), std::move(qualifier),
                     std::move(ann_names), attach_metadata),
        index_(index),
        probe_(std::move(probe)),
        predicate_text_(std::move(predicate_text)) {}

  std::string Describe() const override;

 protected:
  Result<std::vector<RowId>> CollectCandidates() override;
  bool RecheckVisible(const Row& row) const override;

 private:
  const SequenceIndex* index_;
  Probe probe_;
  std::string predicate_text_;
};

// SP-GiST trie regular-expression search (`col MATCHES '<regex>'`, and
// LIKE patterns with a leading wildcard rewritten to a regex): descends
// the trie advancing the NFA state set edge by edge, pruning subtrees
// whose state set goes dead. Candidates come back unordered supersets of
// nothing — every candidate's indexed key matched — but snapshot mode can
// still surface stale entries, so the visible cell is re-matched.
class SpgistRegexScanNode : public ScanNodeBase {
 public:
  SpgistRegexScanNode(const ExecContext* ctx, Table* table,
                      std::string table_name, std::string qualifier,
                      std::vector<std::string> ann_names, bool attach_metadata,
                      const SequenceIndex* index, RegexProgram program,
                      std::string predicate_text)
      : ScanNodeBase(ctx, table, std::move(table_name), std::move(qualifier),
                     std::move(ann_names), attach_metadata),
        index_(index),
        program_(std::move(program)),
        predicate_text_(std::move(predicate_text)) {}

  std::string Describe() const override;

 protected:
  Result<std::vector<RowId>> CollectCandidates() override;
  bool RecheckVisible(const Row& row) const override;

 private:
  const SequenceIndex* index_;
  RegexProgram program_;
  std::string predicate_text_;
};

// Top-k nearest-sequence scan (`ORDER BY DISTANCE(col, 'seq') LIMIT k`):
// best-first trie traversal ordered by a Levenshtein lower bound, stopping
// once k rows (plus ties at the k-th distance) are proven closest.
// Candidates stream in (distance, RowId) order — NOT RowId order — and
// visibility is resolved inside the traversal so stale index entries can
// never underfill k; RecheckVisible therefore accepts everything.
class SpgistTopKScanNode : public ScanNodeBase {
 public:
  SpgistTopKScanNode(const ExecContext* ctx, Table* table,
                     std::string table_name, std::string qualifier,
                     std::vector<std::string> ann_names, bool attach_metadata,
                     const SequenceIndex* index, std::string target, size_t k,
                     std::string predicate_text)
      : ScanNodeBase(ctx, table, std::move(table_name), std::move(qualifier),
                     std::move(ann_names), attach_metadata),
        index_(index),
        target_(std::move(target)),
        k_(k),
        predicate_text_(std::move(predicate_text)) {}

  std::string Describe() const override;

 protected:
  Result<std::vector<RowId>> CollectCandidates() override;
  bool RecheckVisible(const Row& /*row*/) const override { return true; }

 private:
  const SequenceIndex* index_;
  std::string target_;
  size_t k_;
  std::string predicate_text_;
};

// Smith–Waterman similarity threshold (`ALIGN(col, 'seq') >= s`): the trie
// shares the alignment DP across common prefixes and deduplicates repeated
// sequences, then the scan re-scores the visible cell (snapshot staleness).
class SpgistAlignScanNode : public ScanNodeBase {
 public:
  SpgistAlignScanNode(const ExecContext* ctx, Table* table,
                      std::string table_name, std::string qualifier,
                      std::vector<std::string> ann_names, bool attach_metadata,
                      const SequenceIndex* index, std::string query,
                      int min_score, bool strict, std::string predicate_text)
      : ScanNodeBase(ctx, table, std::move(table_name), std::move(qualifier),
                     std::move(ann_names), attach_metadata),
        index_(index),
        query_(std::move(query)),
        min_score_(min_score),
        strict_(strict),
        predicate_text_(std::move(predicate_text)) {}

  std::string Describe() const override;

 protected:
  Result<std::vector<RowId>> CollectCandidates() override;
  bool RecheckVisible(const Row& row) const override;

 private:
  const SequenceIndex* index_;
  std::string query_;
  int min_score_;
  bool strict_;
  std::string predicate_text_;
};

// AWHERE pushdown: scans only the row intervals covered by live regions of
// the attached annotation tables (via the annotation interval structures
// and Table row-range access) plus rows holding outdated cells — the only
// rows that can carry an annotation for AWHERE to match.
class AnnIntervalScanNode : public ScanNodeBase {
 public:
  AnnIntervalScanNode(const ExecContext* ctx, Table* table,
                      std::string table_name, std::string qualifier,
                      std::vector<std::string> ann_names)
      : ScanNodeBase(ctx, table, std::move(table_name), std::move(qualifier),
                     std::move(ann_names), /*attach_metadata=*/true) {}

  std::string Describe() const override;

 protected:
  Result<std::vector<RowId>> CollectCandidates() override;
};

// ---------------------------------------------------------------------------
// Streaming operators
// ---------------------------------------------------------------------------

// WHERE: value predicates (an implicit conjunction, evaluated in order
// with short-circuiting); passing tuples keep all their annotations.
class FilterNode : public PlanNode {
 public:
  FilterNode(PlanNodePtr child, std::vector<const Expr*> predicates);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  PlanNodePtr child_;
  std::vector<const Expr*> predicates_;
};

// AWHERE: a tuple passes iff one of its annotations satisfies the
// condition (the tuple keeps all annotations).
class AWhereNode : public PlanNode {
 public:
  AWhereNode(PlanNodePtr child, const Expr* condition);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  PlanNodePtr child_;
  const Expr* condition_;
};

// FILTER: all tuples pass; annotations not satisfying the condition drop.
class AnnotFilterNode : public PlanNode {
 public:
  AnnotFilterNode(PlanNodePtr child, const Expr* condition);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  PlanNodePtr child_;
  const Expr* condition_;
};

// PROMOTE: copies the annotations of source input columns onto the target
// input column before projection (paper §3.4).
class PromoteNode : public PlanNode {
 public:
  // Each mapping: (target column index, source column indices).
  using Mapping = std::pair<size_t, std::vector<size_t>>;

  PromoteNode(PlanNodePtr child, std::vector<Mapping> mappings);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  PlanNodePtr child_;
  std::vector<Mapping> mappings_;
};

// Projection: direct columns carry their annotations; computed expressions
// start with none (plus any inline PROMOTE sources).
class ProjectNode : public PlanNode {
 public:
  struct Item {
    bool is_direct = false;
    size_t direct_index = 0;   // valid when is_direct
    const Expr* expr = nullptr;  // valid when !is_direct
    std::string name;
    // Inline PROMOTE sources (computed items, or direct items the planner
    // could not route through a PromoteNode).
    std::vector<size_t> promote_sources;
    // Output qualifier; nonempty only for the column-order-restoring
    // projection over a reordered join, where qualified references must
    // keep binding above the node.
    std::string qualifier;
  };

  ProjectNode(PlanNodePtr child, std::vector<Item> items);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  PlanNodePtr child_;
  std::vector<Item> items_;
};

// GROUP BY + aggregates (+ HAVING/AHAVING) in one pipeline-breaking node.
// Groups hash on the encoded key columns; output order is first-seen, and
// each output column unions the annotations of the column it aggregates
// over across the group (§3.4).
class HashAggregateNode : public PlanNode {
 public:
  HashAggregateNode(PlanNodePtr child, const SelectStmt* stmt,
                    std::vector<size_t> key_columns,
                    std::vector<std::string> column_names);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  PlanNodePtr child_;
  const SelectStmt* stmt_;
  std::vector<size_t> key_columns_;
  std::vector<PlanTuple> results_;
  size_t pos_ = 0;
};

// DISTINCT: duplicate elimination unioning annotations (§3.4).
class DistinctNode : public PlanNode {
 public:
  explicit DistinctNode(PlanNodePtr child);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  PlanNodePtr child_;
  std::vector<PlanTuple> results_;
  size_t pos_ = 0;
};

// ORDER BY: stable sort on pre-bound key columns or scalar expressions
// (e.g. ORDER BY DISTANCE(Seq, 'ACGT')). Expression keys are evaluated
// once per tuple before sorting.
class SortNode : public PlanNode {
 public:
  struct Key {
    size_t column = 0;           // valid iff expr == nullptr
    const Expr* expr = nullptr;  // owned by the statement, outlives the plan
    bool descending = false;
  };

  SortNode(PlanNodePtr child, std::vector<Key> keys);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  PlanNodePtr child_;
  std::vector<Key> keys_;
  std::vector<PlanTuple> results_;
  size_t pos_ = 0;
};

// LIMIT n.
class LimitNode : public PlanNode {
 public:
  LimitNode(PlanNodePtr child, uint64_t limit);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  PlanNodePtr child_;
  uint64_t limit_;
  uint64_t produced_ = 0;
};

// Cartesian product: materializes the right (build) side once, streams the
// left side. Join predicates live in a FilterNode above (or are pushed
// below the join by the planner when they touch one side only).
class NestedLoopJoinNode : public PlanNode {
 public:
  NestedLoopJoinNode(PlanNodePtr left, PlanNodePtr right);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  PlanNodePtr left_;
  PlanNodePtr right_;
  std::vector<PlanTuple> right_tuples_;
  PlanTuple current_left_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

// Equi-join: materializes and hashes the right (build) side on the join
// key columns, then streams the left (probe) side. Key equality is
// verified with Value::Compare after the hash probe, so results match the
// NestedLoopJoin + Filter pipeline exactly (NULL keys never join, mixed
// int/double keys compare numerically). Output tuples concatenate both
// sides' values and per-column annotations, like NestedLoopJoin.
class HashJoinNode : public PlanNode {
 public:
  // `keys`: (left column index, right column index) pairs joined by
  // equality. `predicate_text` labels the node in EXPLAIN.
  HashJoinNode(PlanNodePtr left, PlanNodePtr right,
               std::vector<std::pair<size_t, size_t>> keys,
               std::string predicate_text);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  // Canonical hash key of the tuple's `cols` values (numerics normalized
  // to double so int 1 and double 1.0 land in the same bucket); false
  // when any key value is NULL (the tuple cannot join).
  static bool EncodeKey(const PlanTuple& tuple,
                        const std::vector<size_t>& cols, std::string* out);

  PlanNodePtr left_;
  PlanNodePtr right_;
  std::vector<std::pair<size_t, size_t>> keys_;
  std::string predicate_text_;
  std::vector<size_t> left_cols_;   // keys_, split per side
  std::vector<size_t> right_cols_;
  std::unordered_map<std::string, std::vector<PlanTuple>> build_;
  PlanTuple current_left_;
  const std::vector<PlanTuple>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  bool have_left_ = false;
};

// UNION / INTERSECT / EXCEPT with annotation union on value-equal tuples
// (§3.4). Materializes both inputs.
class SetOpNode : public PlanNode {
 public:
  SetOpNode(SetOpKind kind, PlanNodePtr left, PlanNodePtr right);

  Status Open() override;
  Result<bool> Next(PlanTuple* out) override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override;

 private:
  SetOpKind kind_;
  PlanNodePtr left_;
  PlanNodePtr right_;
  std::vector<PlanTuple> results_;
  size_t pos_ = 0;
};

}  // namespace bdbms

#endif  // BDBMS_PLAN_OPERATOR_H_
