#ifndef BDBMS_PLAN_PLAN_TUPLE_H_
#define BDBMS_PLAN_PLAN_TUPLE_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/value.h"
#include "exec/query_result.h"
#include "table/table.h"

namespace bdbms {

// One output column of a plan node: name plus the qualifier it is
// addressable under (the FROM alias if one was given, else the table
// name; "" for computed/projected columns).
struct BoundColumn {
  std::string name;
  std::string qualifier;
};

// The tuple flowing between plan operators: values, per-column propagated
// annotations, and — while the tuple still corresponds 1:1 to a stored row
// — its RowId (annotation commands need it to address regions).
struct PlanTuple {
  Row values;
  std::vector<std::vector<ResultAnnotation>> anns;  // parallel to values
  RowId source_row = 0;
  bool has_source = false;
};

// A table's schema columns bound under one qualifier — the column space
// of a scan (and of DML WHERE/SET expressions).
std::vector<BoundColumn> QualifiedColumns(const TableSchema& schema,
                                          const std::string& qualifier);

// Resolves qualifier.name against a column list; empty qualifier matches
// any. Errors on ambiguity or no match.
Result<size_t> BindColumn(const std::vector<BoundColumn>& columns,
                          const std::string& qualifier,
                          const std::string& name);

// Merges `extra` into `into`, skipping duplicates (annotation union, the
// merge rule every annotation-propagating operator shares, paper §3.4).
void MergeAnnotations(std::vector<ResultAnnotation>* into,
                      const std::vector<ResultAnnotation>& extra);

// Byte-string identity of a tuple's values (duplicate detection for
// DISTINCT, set operations and grouping).
std::string TupleKey(const Row& values);

}  // namespace bdbms

#endif  // BDBMS_PLAN_PLAN_TUPLE_H_
