#ifndef BDBMS_PLAN_COST_MODEL_H_
#define BDBMS_PLAN_COST_MODEL_H_

#include <functional>
#include <optional>

#include "catalog/statistics.h"
#include "index/secondary_index.h"
#include "sql/ast.h"

namespace bdbms {

// The planner's cost model: abstract per-tuple work units (not time) used
// only to rank alternative plans. Formulas and constants are documented in
// docs/planner.md; changing a constant changes plan choices, so the golden
// EXPLAIN tests pin the observable behaviour.
namespace cost {

inline constexpr double kSeqTuple = 1.0;     // scan + decode one heap tuple
inline constexpr double kRandomFetch = 2.0;  // fetch one row via index RowId
inline constexpr double kIndexKeyTuple = 0.5;  // decode one index entry
                                               // (index-only scans)
inline constexpr double kFilterTuple = 0.1;  // evaluate one predicate once
inline constexpr double kHashBuild = 1.5;    // hash-insert one build tuple
inline constexpr double kHashProbe = 1.0;    // probe with one stream tuple
inline constexpr double kNlPair = 1.0;       // form one nested-loop pair
inline constexpr double kPipeTuple = 0.1;    // project/promote one tuple
inline constexpr double kSortTuple = 0.5;    // per tuple per log2 level

// Default selectivities when ANALYZE statistics are missing.
inline constexpr double kDefaultEq = 0.1;
inline constexpr double kDefaultRange = 1.0 / 3.0;
inline constexpr double kDefaultLike = 0.25;
inline constexpr double kDefaultSel = 1.0 / 3.0;
// Trie-pruned sequence searches: a regex keeps more of the table than a
// literal prefix; an ALIGN score threshold is assumed tighter.
inline constexpr double kDefaultRegex = 0.3;
inline constexpr double kDefaultAlign = 0.2;

// Output-fraction heuristics for nodes without a predicate model.
inline constexpr double kAnnIntervalFraction = 0.25;  // AnnIntervalScan
inline constexpr double kAnnMatchFraction = 0.5;      // AWHERE
inline constexpr double kGroupFraction = 0.1;         // GROUP BY groups

}  // namespace cost

// B+-tree descent cost for a table of `rows` tuples.
double IndexProbeCost(double rows);

// Full-scan cost: rows * kSeqTuple.
double SeqScanCost(double rows);

// Index-scan cost: one descent plus a random fetch per matching row.
double IndexScanCost(double table_rows, double matching_rows);

// Index-only-scan cost: one descent plus a key decode per matching entry —
// no base-table fetch, which is the whole point (kIndexKeyTuple <
// kSeqTuple < kRandomFetch).
double IndexOnlyScanCost(double table_rows, double matching_rows);

// A nonempty input never estimates below one row (the standard clamp:
// a zero estimate would zero out everything above it).
double ClampRows(double rows, double input_rows);

// Selectivity of `column = probe` from column statistics (1/NDV; 0 when
// the probe falls outside the analyzed [min, max]). `stats` may be null.
double EqSelectivity(const ColumnStats* stats, const Value& probe);

// Selectivity of a (half-)bounded range probe: histogram interpolation
// when available, min/max linear interpolation for numeric extremes,
// else the default per bounded side. `stats` may be null.
double RangeSelectivity(const ColumnStats* stats,
                        const std::optional<IndexBound>& lo,
                        const std::optional<IndexBound>& hi);

// Resolves a kColumnRef expression to its column's statistics; returns
// nullptr when the column is unknown or the table was never analyzed.
using StatsResolver = std::function<const ColumnStats*(const Expr&)>;

// Estimated fraction of input tuples satisfying one WHERE conjunct.
// Handles comparisons against literals (either operand order), LIKE,
// IS [NOT] NULL, NOT, and nested AND/OR; anything else falls back to
// kDefaultSel. Always in [0, 1].
double EstimateConjunctSelectivity(const Expr& e,
                                   const StatsResolver& resolver);

}  // namespace bdbms

#endif  // BDBMS_PLAN_COST_MODEL_H_
