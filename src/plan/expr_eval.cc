#include "plan/expr_eval.h"

#include <functional>
#include <optional>
#include <string>

#include "bio/alignment.h"
#include "index/spgist/regex.h"

namespace bdbms {

namespace {

using ColumnFn =
    std::function<Result<Value>(const std::string&, const std::string&)>;
using AnnFieldFn = std::function<Result<Value>(AnnField)>;
using AggregateFn = std::function<Result<Value>(const Expr&)>;

Result<Value> EvalGeneric(const Expr& e, const ColumnFn& col_fn,
                          const AnnFieldFn& ann_fn, const AggregateFn& agg_fn);

Result<Value> EvalBinary(const Expr& e, const ColumnFn& col_fn,
                         const AnnFieldFn& ann_fn, const AggregateFn& agg_fn) {
  // AND/OR short-circuit.
  if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
    BDBMS_ASSIGN_OR_RETURN(Value lhs,
                           EvalGeneric(*e.left, col_fn, ann_fn, agg_fn));
    BDBMS_ASSIGN_OR_RETURN(bool lb, Truthy(lhs));
    if (e.bin_op == BinOp::kAnd && !lb) return Value::Int(0);
    if (e.bin_op == BinOp::kOr && lb) return Value::Int(1);
    BDBMS_ASSIGN_OR_RETURN(Value rhs,
                           EvalGeneric(*e.right, col_fn, ann_fn, agg_fn));
    BDBMS_ASSIGN_OR_RETURN(bool rb, Truthy(rhs));
    return Value::Int(rb ? 1 : 0);
  }

  BDBMS_ASSIGN_OR_RETURN(Value lhs,
                         EvalGeneric(*e.left, col_fn, ann_fn, agg_fn));
  BDBMS_ASSIGN_OR_RETURN(Value rhs,
                         EvalGeneric(*e.right, col_fn, ann_fn, agg_fn));

  switch (e.bin_op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      // Comparisons with NULL are false (two-valued logic; IS NULL exists).
      if (lhs.is_null() || rhs.is_null()) return Value::Int(0);
      int c = lhs.Compare(rhs);
      bool r = false;
      switch (e.bin_op) {
        case BinOp::kEq: r = c == 0; break;
        case BinOp::kNe: r = c != 0; break;
        case BinOp::kLt: r = c < 0; break;
        case BinOp::kLe: r = c <= 0; break;
        case BinOp::kGt: r = c > 0; break;
        default: r = c >= 0; break;
      }
      return Value::Int(r ? 1 : 0);
    }
    case BinOp::kLike: {
      if (lhs.is_null() || rhs.is_null()) return Value::Int(0);
      if (!lhs.is_string() || !rhs.is_string()) {
        return Status::InvalidArgument("LIKE requires string operands");
      }
      return Value::Int(LikeMatch(lhs.as_string(), rhs.as_string()) ? 1 : 0);
    }
    case BinOp::kMatches: {
      if (lhs.is_null() || rhs.is_null()) return Value::Int(0);
      if (!lhs.is_string() || !rhs.is_string()) {
        return Status::InvalidArgument("MATCHES requires string operands");
      }
      BDBMS_ASSIGN_OR_RETURN(RegexProgram prog,
                             RegexProgram::Compile(rhs.as_string()));
      return Value::Int(prog.FullMatch(lhs.as_string()) ? 1 : 0);
    }
    case BinOp::kAdd:
      if (lhs.is_string() && rhs.is_string()) {
        return Value::Text(lhs.as_string() + rhs.as_string());
      }
      [[fallthrough]];
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (!lhs.is_numeric() || !rhs.is_numeric()) {
        return Status::InvalidArgument("arithmetic requires numeric operands");
      }
      bool both_int =
          lhs.type() == DataType::kInt && rhs.type() == DataType::kInt;
      if (e.bin_op == BinOp::kDiv) {
        double d = rhs.as_double();
        if (d == 0.0) return Status::InvalidArgument("division by zero");
        // INT64_MIN / -1 (and its %) overflow int64 — take the double
        // path for that one pair.
        if (both_int &&
            !(lhs.as_int() == INT64_MIN && rhs.as_int() == -1) &&
            lhs.as_int() % rhs.as_int() == 0) {
          return Value::Int(lhs.as_int() / rhs.as_int());
        }
        return Value::Double(lhs.as_double() / d);
      }
      if (both_int) {
        int64_t a = lhs.as_int(), b = rhs.as_int();
        switch (e.bin_op) {
          case BinOp::kAdd: return Value::Int(a + b);
          case BinOp::kSub: return Value::Int(a - b);
          default: return Value::Int(a * b);
        }
      }
      double a = lhs.as_double(), b = rhs.as_double();
      switch (e.bin_op) {
        case BinOp::kAdd: return Value::Double(a + b);
        case BinOp::kSub: return Value::Double(a - b);
        default: return Value::Double(a * b);
      }
    }
    default:
      return Status::Internal("unhandled binary operator");
  }
}

Result<Value> EvalGeneric(const Expr& e, const ColumnFn& col_fn,
                          const AnnFieldFn& ann_fn, const AggregateFn& agg_fn) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef:
      return col_fn(e.qualifier, e.column);
    case ExprKind::kAnnField:
      return ann_fn(e.ann_field);
    case ExprKind::kAggregate:
      return agg_fn(e);
    case ExprKind::kUnary: {
      BDBMS_ASSIGN_OR_RETURN(Value v,
                             EvalGeneric(*e.child, col_fn, ann_fn, agg_fn));
      if (e.un_op == UnOp::kIsNull || e.un_op == UnOp::kIsNotNull) {
        bool is_null = v.is_null();
        return Value::Int((e.un_op == UnOp::kIsNull) == is_null ? 1 : 0);
      }
      if (e.un_op == UnOp::kNot) {
        BDBMS_ASSIGN_OR_RETURN(bool b, Truthy(v));
        return Value::Int(b ? 0 : 1);
      }
      // Negation.
      if (v.is_null()) return Value::Null();
      if (v.type() == DataType::kInt) return Value::Int(-v.as_int());
      if (v.type() == DataType::kDouble) return Value::Double(-v.as_double());
      return Status::InvalidArgument("unary minus requires a number");
    }
    case ExprKind::kBinary:
      return EvalBinary(e, col_fn, ann_fn, agg_fn);
    case ExprKind::kFunction: {
      BDBMS_ASSIGN_OR_RETURN(Value lhs,
                             EvalGeneric(*e.left, col_fn, ann_fn, agg_fn));
      BDBMS_ASSIGN_OR_RETURN(Value rhs,
                             EvalGeneric(*e.right, col_fn, ann_fn, agg_fn));
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (!lhs.is_string() || !rhs.is_string()) {
        return Status::InvalidArgument(
            e.scalar_fn == ScalarFn::kAlign
                ? "ALIGN requires string operands"
                : "DISTANCE requires string operands");
      }
      if (e.scalar_fn == ScalarFn::kAlign) {
        return Value::Int(SmithWatermanScore(lhs.as_string(), rhs.as_string()));
      }
      return Value::Int(EditDistance(lhs.as_string(), rhs.as_string()));
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Value> NoColumns(const std::string&, const std::string& name) {
  return Status::InvalidArgument("column " + name +
                                 " not allowed in this context");
}
Result<Value> NoAnnFields(AnnField) {
  return Status::InvalidArgument(
      "annotation attributes (VALUE/CATEGORY/AUTHOR) are only allowed in "
      "AWHERE/AHAVING/FILTER");
}
Result<Value> NoAggregates(const Expr&) {
  return Status::InvalidArgument("aggregate not allowed in this context");
}

Result<Value> EvalAggregate(const Expr& e,
                            const std::vector<BoundColumn>& columns,
                            const std::vector<const PlanTuple*>& group) {
  if (e.agg_fn == AggFn::kCountStar) {
    return Value::Int(static_cast<int64_t>(group.size()));
  }
  int64_t count = 0;
  double sum = 0;
  int64_t int_sum = 0;  // exact accumulator while the group is all-int
  bool all_int = true;
  std::optional<Value> min, max;
  for (const PlanTuple* t : group) {
    BDBMS_ASSIGN_OR_RETURN(Value v, EvalScalar(*e.child, columns, *t));
    if (v.is_null()) continue;
    ++count;
    if (v.is_numeric()) {
      sum += v.as_double();
      if (v.type() != DataType::kInt) {
        all_int = false;
      } else if (all_int &&
                 __builtin_add_overflow(int_sum, v.as_int(), &int_sum)) {
        all_int = false;  // overflowed int64: fall back to the double sum
      }
    } else if (e.agg_fn == AggFn::kSum || e.agg_fn == AggFn::kAvg) {
      return Status::InvalidArgument("SUM/AVG require numeric values");
    }
    if (!min.has_value() || v.Compare(*min) < 0) min = v;
    if (!max.has_value() || v.Compare(*max) > 0) max = v;
  }
  switch (e.agg_fn) {
    case AggFn::kCount:
      return Value::Int(count);
    case AggFn::kSum:
      if (count == 0) return Value::Null();
      return all_int ? Value::Int(int_sum) : Value::Double(sum);
    case AggFn::kAvg:
      if (count == 0) return Value::Null();
      return Value::Double(sum / static_cast<double>(count));
    case AggFn::kMin:
      return min.has_value() ? *min : Value::Null();
    case AggFn::kMax:
      return max.has_value() ? *max : Value::Null();
    default:
      return Status::Internal("unhandled aggregate");
  }
}

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Greedy two-pointer wildcard match: on mismatch, rewind to one past the
  // last '%' and retry with the next text position. O(text * pattern)
  // worst case (the naive recursive version is exponential in the number
  // of '%'s).
  size_t t = 0, p = 0;
  size_t star = std::string_view::npos;  // position of the last '%'
  size_t star_t = 0;                     // text position it matched up to
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<bool> Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_numeric()) return v.as_double() != 0.0;
  return Status::InvalidArgument("condition did not evaluate to a boolean");
}

std::vector<BoundColumn> QualifiedColumns(const TableSchema& schema,
                                          const std::string& qualifier) {
  std::vector<BoundColumn> columns;
  columns.reserve(schema.num_columns());
  for (const ColumnDef& c : schema.columns()) {
    columns.push_back({c.name, qualifier});
  }
  return columns;
}

Result<size_t> BindColumn(const std::vector<BoundColumn>& columns,
                          const std::string& qualifier,
                          const std::string& name) {
  size_t found = columns.size();
  for (size_t i = 0; i < columns.size(); ++i) {
    const BoundColumn& c = columns[i];
    if (c.name != name) continue;
    if (!qualifier.empty() && c.qualifier != qualifier) continue;
    if (found != columns.size()) {
      return Status::InvalidArgument("ambiguous column " + name);
    }
    found = i;
  }
  if (found == columns.size()) {
    return Status::NotFound(
        "no column " + (qualifier.empty() ? name : qualifier + "." + name));
  }
  return found;
}

void MergeAnnotations(std::vector<ResultAnnotation>* into,
                      const std::vector<ResultAnnotation>& extra) {
  for (const ResultAnnotation& a : extra) {
    bool dup = false;
    for (const ResultAnnotation& b : *into) {
      if (b.SameAs(a)) {
        dup = true;
        break;
      }
    }
    if (!dup) into->push_back(a);
  }
}

std::string TupleKey(const Row& values) {
  std::string key;
  for (const Value& v : values) v.EncodeTo(&key);
  return key;
}

Result<Value> EvalScalar(const Expr& e, const std::vector<BoundColumn>& columns,
                         const PlanTuple& tuple) {
  return EvalGeneric(
      e,
      [&](const std::string& qual, const std::string& name) -> Result<Value> {
        BDBMS_ASSIGN_OR_RETURN(size_t idx, BindColumn(columns, qual, name));
        return tuple.values[idx];
      },
      NoAnnFields, NoAggregates);
}

Result<Value> EvalAnnExpr(const Expr& e, const ResultAnnotation& ann) {
  return EvalGeneric(e, NoColumns,
                     [&](AnnField f) -> Result<Value> {
                       switch (f) {
                         case AnnField::kValue:
                           return Value::Text(ann.body);
                         case AnnField::kCategory:
                           return Value::Text(ann.category);
                         case AnnField::kAuthor:
                           return Value::Text(ann.author);
                       }
                       return Status::Internal("bad annotation field");
                     },
                     NoAggregates);
}

Result<bool> TupleAnnMatch(const Expr& cond, const PlanTuple& tuple) {
  for (const auto& per_col : tuple.anns) {
    for (const ResultAnnotation& a : per_col) {
      BDBMS_ASSIGN_OR_RETURN(Value v, EvalAnnExpr(cond, a));
      BDBMS_ASSIGN_OR_RETURN(bool b, Truthy(v));
      if (b) return true;
    }
  }
  return false;
}

Result<Value> EvalGroupExpr(const Expr& e,
                            const std::vector<BoundColumn>& columns,
                            const std::vector<const PlanTuple*>& group) {
  return EvalGeneric(
      e,
      [&](const std::string& qual, const std::string& name) -> Result<Value> {
        if (group.empty()) return Value::Null();
        BDBMS_ASSIGN_OR_RETURN(size_t idx, BindColumn(columns, qual, name));
        return group[0]->values[idx];
      },
      NoAnnFields,
      [&](const Expr& agg) -> Result<Value> {
        return EvalAggregate(agg, columns, group);
      });
}

}  // namespace bdbms
