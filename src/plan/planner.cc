#include "plan/planner.h"

#include <map>
#include <optional>
#include <utility>

#include "plan/expr_eval.h"
#include "sql/ast_printer.h"

namespace bdbms {

namespace {

// Splits an AND tree into its conjuncts.
void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kAnd) {
    SplitConjuncts(e->left.get(), out);
    SplitConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

void CollectColumnRefs(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kColumnRef) out->push_back(e);
  CollectColumnRefs(e->left.get(), out);
  CollectColumnRefs(e->right.get(), out);
  CollectColumnRefs(e->child.get(), out);
}

// Coerces a probe literal to the indexed column's type; empty when the
// comparison cannot be routed through the index.
std::optional<Value> CoerceProbe(const Value& literal, DataType column_type) {
  if (literal.is_null()) return std::nullopt;
  if (literal.type() == DataType::kDouble && column_type == DataType::kInt) {
    // Guard the int64 cast inside CoerceTo against overflow.
    double d = literal.as_double();
    if (d < -9.2e18 || d > 9.2e18) return std::nullopt;
  }
  auto coerced = literal.CoerceTo(column_type);
  if (!coerced.ok()) return std::nullopt;
  return *coerced;
}

// One comparison conjunct normalized to `column <op> value`.
struct ColumnComparison {
  size_t column = 0;
  BinOp op = BinOp::kEq;
  Value value;
  const Expr* conjunct = nullptr;
};

// The probe the planner settled on for one scan.
struct IndexChoice {
  const SecondaryIndex* index = nullptr;
  IndexScanNode::Probe probe;
  std::string predicate_text;
  std::vector<const Expr*> consumed;
};

BinOp FlipComparison(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;
  }
}

// Extracts `col <op> literal` (either operand order) from a conjunct.
std::optional<ColumnComparison> MatchComparison(
    const Expr* e, const std::vector<BoundColumn>& scan_columns,
    const TableSchema& schema) {
  if (e->kind != ExprKind::kBinary) return std::nullopt;
  switch (e->bin_op) {
    case BinOp::kEq:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      break;
    default:
      return std::nullopt;
  }
  const Expr* col = e->left.get();
  const Expr* lit = e->right.get();
  BinOp op = e->bin_op;
  if (col->kind != ExprKind::kColumnRef) {
    std::swap(col, lit);
    op = FlipComparison(op);
  }
  if (col->kind != ExprKind::kColumnRef || lit->kind != ExprKind::kLiteral) {
    return std::nullopt;
  }
  auto bound = BindColumn(scan_columns, col->qualifier, col->column);
  if (!bound.ok()) return std::nullopt;
  std::optional<Value> probe =
      CoerceProbe(lit->literal, schema.column(*bound).type);
  if (!probe.has_value()) return std::nullopt;
  return ColumnComparison{*bound, op, std::move(*probe), e};
}

// Picks an index probe from the scan's pushed conjuncts: the first
// equality over an indexed column wins; otherwise the first indexed
// column with at least one range bound, folding every bound on it.
std::optional<IndexChoice> ChooseIndex(
    const Table& table, const std::vector<BoundColumn>& scan_columns,
    const std::vector<const Expr*>& conjuncts) {
  std::vector<ColumnComparison> comparisons;
  for (const Expr* e : conjuncts) {
    auto cmp = MatchComparison(e, scan_columns, table.schema());
    if (cmp.has_value()) comparisons.push_back(std::move(*cmp));
  }
  // Equality first.
  for (const ColumnComparison& cmp : comparisons) {
    if (cmp.op != BinOp::kEq) continue;
    const SecondaryIndex* index = table.FindIndexOnColumn(cmp.column);
    if (index == nullptr) continue;
    IndexChoice choice;
    choice.index = index;
    choice.probe.equal = cmp.value;
    choice.predicate_text = ExprToString(*cmp.conjunct);
    choice.consumed = {cmp.conjunct};
    return choice;
  }
  // Then ranges: fold all bounds on the chosen column.
  for (const ColumnComparison& seed : comparisons) {
    if (seed.op == BinOp::kEq) continue;
    const SecondaryIndex* index = table.FindIndexOnColumn(seed.column);
    if (index == nullptr) continue;
    IndexChoice choice;
    choice.index = index;
    for (const ColumnComparison& cmp : comparisons) {
      if (cmp.column != seed.column || cmp.op == BinOp::kEq) continue;
      bool is_lower = cmp.op == BinOp::kGt || cmp.op == BinOp::kGe;
      bool inclusive = cmp.op == BinOp::kGe || cmp.op == BinOp::kLe;
      std::optional<IndexBound>& slot =
          is_lower ? choice.probe.lo : choice.probe.hi;
      IndexBound bound{cmp.value, inclusive};
      if (!slot.has_value()) {
        slot = std::move(bound);
      } else {
        // Keep the tighter bound; on equal values exclusive is tighter.
        int c = bound.value.Compare(slot->value);
        bool tighter = is_lower ? c > 0 : c < 0;
        if (c == 0 && !bound.inclusive) tighter = true;
        if (tighter) slot = std::move(bound);
      }
      if (!choice.predicate_text.empty()) choice.predicate_text += " AND ";
      choice.predicate_text += ExprToString(*cmp.conjunct);
      choice.consumed.push_back(cmp.conjunct);
    }
    return choice;
  }
  return std::nullopt;
}

// Appends a Filter node for the given conjuncts (no-op when empty).
PlanNodePtr WrapFilter(PlanNodePtr plan, std::vector<const Expr*> conjuncts) {
  if (conjuncts.empty()) return plan;
  return std::make_unique<FilterNode>(std::move(plan), std::move(conjuncts));
}

// Output column name of a select item in the aggregate pipeline.
std::string AggregateItemName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  return item.expr->kind == ExprKind::kColumnRef ? item.expr->column : "expr";
}

}  // namespace

Result<PlanNodePtr> Planner::BuildScan(const TableRef& ref,
                                       std::vector<const Expr*> conjuncts,
                                       bool attach_metadata,
                                       bool try_ann_interval) {
  if (!ctx_->catalog->HasTable(ref.table)) {
    return Status::NotFound("no table " + ref.table);
  }
  if (attach_metadata) {
    BDBMS_RETURN_IF_ERROR(
        ctx_->access->Check(user_, ref.table, Privilege::kSelect));
  }
  BDBMS_ASSIGN_OR_RETURN(Table * table, ctx_->tables(ref.table));

  std::vector<std::string> ann_names = ref.annotation_tables;
  if (ref.all_annotations) ann_names = ctx_->annotations->ListFor(ref.table);
  for (const std::string& a : ann_names) {
    if (!ctx_->catalog->HasAnnotationTable(ref.table, a)) {
      return Status::NotFound("no annotation table " + a + " on " + ref.table);
    }
  }

  std::string qualifier = ref.alias.empty() ? ref.table : ref.alias;
  std::vector<BoundColumn> scan_columns =
      QualifiedColumns(table->schema(), qualifier);

  std::optional<IndexChoice> choice =
      ChooseIndex(*table, scan_columns, conjuncts);
  PlanNodePtr scan;
  if (choice.has_value()) {
    // Drop the conjuncts the probe consumed; the rest filter above.
    std::vector<const Expr*> residual;
    for (const Expr* e : conjuncts) {
      bool consumed = false;
      for (const Expr* c : choice->consumed) consumed |= c == e;
      if (!consumed) residual.push_back(e);
    }
    conjuncts = std::move(residual);
    scan = std::make_unique<IndexScanNode>(
        ctx_, table, ref.table, qualifier, std::move(ann_names),
        attach_metadata, choice->index, std::move(choice->probe),
        std::move(choice->predicate_text));
  } else if (try_ann_interval && attach_metadata) {
    scan = std::make_unique<AnnIntervalScanNode>(ctx_, table, ref.table,
                                                 qualifier,
                                                 std::move(ann_names));
  } else {
    scan = std::make_unique<SeqScanNode>(ctx_, table, ref.table, qualifier,
                                         std::move(ann_names),
                                         attach_metadata);
  }
  return WrapFilter(std::move(scan), std::move(conjuncts));
}

Result<PlanNodePtr> Planner::PlanFromWhere(const SelectStmt& stmt) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }

  // The joined column space, for routing conjuncts to scans.
  std::vector<BoundColumn> joined;
  std::vector<std::pair<size_t, size_t>> scan_ranges;  // [begin, end) per scan
  for (const TableRef& ref : stmt.from) {
    // GetSchema doubles as the existence check (NotFound on unknown).
    BDBMS_ASSIGN_OR_RETURN(TableSchema schema,
                           ctx_->catalog->GetSchema(ref.table));
    std::string qualifier = ref.alias.empty() ? ref.table : ref.alias;
    size_t begin = joined.size();
    for (BoundColumn& c : QualifiedColumns(schema, qualifier)) {
      joined.push_back(std::move(c));
    }
    scan_ranges.emplace_back(begin, joined.size());
  }

  // Route each WHERE conjunct to the single scan it touches, if any.
  // Conjuncts that do not bind cleanly (unknown or ambiguous columns, or
  // columns from several tables) stay in the residual filter, preserving
  // the executor's lazy binding-error behaviour.
  std::vector<const Expr*> conjuncts;
  if (stmt.where) SplitConjuncts(stmt.where.get(), &conjuncts);
  std::vector<std::vector<const Expr*>> pushed(stmt.from.size());
  std::vector<const Expr*> residual;
  for (const Expr* conjunct : conjuncts) {
    std::vector<const Expr*> refs;
    CollectColumnRefs(conjunct, &refs);
    size_t owner = stmt.from.size();  // sentinel: unroutable
    bool routable = !refs.empty();
    for (const Expr* ref : refs) {
      auto bound = BindColumn(joined, ref->qualifier, ref->column);
      if (!bound.ok()) {
        routable = false;
        break;
      }
      size_t scan = 0;
      while (*bound >= scan_ranges[scan].second) ++scan;
      if (owner == stmt.from.size()) {
        owner = scan;
      } else if (owner != scan) {
        routable = false;
        break;
      }
    }
    if (routable && owner < stmt.from.size()) {
      pushed[owner].push_back(conjunct);
    } else {
      residual.push_back(conjunct);
    }
  }

  // AWHERE interval pushdown only applies to a non-joined scan whose
  // candidates are exactly the potentially annotated rows.
  bool try_ann_interval = stmt.from.size() == 1 && stmt.awhere != nullptr;

  PlanNodePtr plan;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    BDBMS_ASSIGN_OR_RETURN(
        PlanNodePtr scan,
        BuildScan(stmt.from[i], std::move(pushed[i]),
                  /*attach_metadata=*/true, try_ann_interval));
    plan = plan == nullptr ? std::move(scan)
                           : std::make_unique<NestedLoopJoinNode>(
                                 std::move(plan), std::move(scan));
  }
  plan = WrapFilter(std::move(plan), std::move(residual));
  if (stmt.awhere) {
    plan = std::make_unique<AWhereNode>(std::move(plan), stmt.awhere.get());
  }
  return plan;
}

Result<PlanNodePtr> Planner::PlanTargetScan(const SelectStmt& stmt) {
  return PlanFromWhere(stmt);
}

Result<PlanNodePtr> Planner::PlanDmlScan(const std::string& table,
                                         const Expr* where) {
  TableRef ref;
  ref.table = table;
  std::vector<const Expr*> conjuncts;
  if (where != nullptr) SplitConjuncts(where, &conjuncts);
  // Conjuncts that do not bind against the table stay residual so binding
  // errors surface at evaluation time, exactly like the WHERE filter.
  return BuildScan(ref, std::move(conjuncts), /*attach_metadata=*/false,
                   /*try_ann_interval=*/false);
}

Result<PlanNodePtr> Planner::PlanSelectImpl(const SelectStmt& stmt,
                                            bool as_set_rhs) {
  BDBMS_ASSIGN_OR_RETURN(PlanNodePtr plan, PlanFromWhere(stmt));

  bool has_aggregates = false;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->ContainsAggregate()) has_aggregates = true;
  }

  if (!stmt.group_by.empty() || has_aggregates) {
    if (stmt.star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with GROUP BY");
    }
    std::vector<size_t> key_columns;
    for (const std::string& col : stmt.group_by) {
      BDBMS_ASSIGN_OR_RETURN(size_t idx, BindColumn(plan->columns(), "", col));
      key_columns.push_back(idx);
    }
    std::vector<std::string> names;
    for (const SelectItem& item : stmt.items) {
      names.push_back(AggregateItemName(item));
    }
    plan = std::make_unique<HashAggregateNode>(
        std::move(plan), &stmt, std::move(key_columns), std::move(names));
  } else if (!stmt.star) {
    // Expand qualifier.* items, resolve direct columns and PROMOTE lists.
    const std::vector<BoundColumn>& in_cols = plan->columns();
    std::vector<ProjectNode::Item> items;
    std::vector<std::vector<size_t>> promote_of_item(stmt.items.size());
    std::vector<size_t> direct_use_count(in_cols.size(), 0);
    std::vector<std::pair<size_t, size_t>> item_of_output;  // (stmt item, out)
    for (size_t s = 0; s < stmt.items.size(); ++s) {
      const SelectItem& item = stmt.items[s];
      const Expr& e = *item.expr;
      for (const std::string& col : item.promote_columns) {
        BDBMS_ASSIGN_OR_RETURN(size_t idx, BindColumn(in_cols, "", col));
        promote_of_item[s].push_back(idx);
      }
      if (e.kind == ExprKind::kColumnRef && e.column == "*") {
        for (size_t i = 0; i < in_cols.size(); ++i) {
          if (in_cols[i].qualifier != e.qualifier) continue;
          items.push_back({true, i, nullptr, in_cols[i].name, {}});
          ++direct_use_count[i];
          item_of_output.emplace_back(s, items.size() - 1);
        }
        continue;
      }
      if (e.kind == ExprKind::kColumnRef) {
        BDBMS_ASSIGN_OR_RETURN(size_t idx,
                               BindColumn(in_cols, e.qualifier, e.column));
        items.push_back({true, idx, nullptr,
                         item.alias.empty() ? in_cols[idx].name : item.alias,
                         {}});
        ++direct_use_count[idx];
        item_of_output.emplace_back(s, items.size() - 1);
        continue;
      }
      items.push_back({false, 0, item.expr.get(),
                       item.alias.empty() ? "expr" : item.alias, {}});
      item_of_output.emplace_back(s, items.size() - 1);
    }
    // Route PROMOTE through a dedicated node when the target input column
    // is projected exactly once; otherwise merge inline during projection
    // so other projections of the same column stay unaffected.
    std::vector<PromoteNode::Mapping> mappings;
    for (const auto& [s, out] : item_of_output) {
      if (promote_of_item[s].empty()) continue;
      ProjectNode::Item& it = items[out];
      if (it.is_direct && direct_use_count[it.direct_index] == 1) {
        mappings.emplace_back(it.direct_index, promote_of_item[s]);
      } else {
        it.promote_sources = promote_of_item[s];
      }
    }
    if (!mappings.empty()) {
      plan = std::make_unique<PromoteNode>(std::move(plan),
                                           std::move(mappings));
    }
    plan = std::make_unique<ProjectNode>(std::move(plan), std::move(items));
  }

  if (stmt.distinct) {
    plan = std::make_unique<DistinctNode>(std::move(plan));
  }
  if (stmt.filter) {
    plan = std::make_unique<AnnotFilterNode>(std::move(plan),
                                             stmt.filter.get());
  }
  // The chain-last SELECT's ORDER BY/LIMIT are the trailing clauses of
  // the whole set operation; the outermost level applies them to the
  // combination, so they are skipped here instead of sorting/capping the
  // branch twice.
  bool is_chain_last = as_set_rhs && stmt.set_op == SetOpKind::kNone;
  if (!stmt.order_by.empty() && !is_chain_last) {
    std::vector<std::pair<size_t, bool>> keys;
    for (const auto& [col, desc] : stmt.order_by) {
      BDBMS_ASSIGN_OR_RETURN(size_t idx, BindColumn(plan->columns(), "", col));
      keys.emplace_back(idx, desc);
    }
    plan = std::make_unique<SortNode>(std::move(plan), std::move(keys));
  }
  if (stmt.limit.has_value() && as_set_rhs && !is_chain_last) {
    // `... UNION SELECT ... LIMIT n UNION ...`: neither a branch cap nor
    // the trailing clause — reject instead of silently dropping it.
    return Status::NotSupported(
        "LIMIT inside a set-operation branch is not supported; apply it "
        "after the last SELECT");
  }
  if (stmt.limit.has_value() && !as_set_rhs) {
    plan = std::make_unique<LimitNode>(std::move(plan), *stmt.limit);
  }

  if (stmt.set_op != SetOpKind::kNone) {
    BDBMS_ASSIGN_OR_RETURN(PlanNodePtr rhs,
                           PlanSelectImpl(*stmt.set_rhs, /*as_set_rhs=*/true));
    plan = std::make_unique<SetOpNode>(stmt.set_op, std::move(plan),
                                       std::move(rhs));
    // A trailing ORDER BY / LIMIT written after the set operations parses
    // into the last SELECT of the (right-nested) chain; per standard SQL
    // they apply to the whole combination, so only the outermost level
    // applies them, reading them off the chain's last SELECT.
    if (!as_set_rhs) {
      const SelectStmt* last = stmt.set_rhs.get();
      while (last->set_op != SetOpKind::kNone) last = last->set_rhs.get();
      if (!last->order_by.empty()) {
        std::vector<std::pair<size_t, bool>> keys;
        for (const auto& [col, desc] : last->order_by) {
          BDBMS_ASSIGN_OR_RETURN(size_t idx,
                                 BindColumn(plan->columns(), "", col));
          keys.emplace_back(idx, desc);
        }
        plan = std::make_unique<SortNode>(std::move(plan), std::move(keys));
      }
      if (last->limit.has_value()) {
        plan = std::make_unique<LimitNode>(std::move(plan), *last->limit);
      }
    }
  }
  return plan;
}

Result<PlanNodePtr> Planner::PlanSelect(const SelectStmt& stmt) {
  return PlanSelectImpl(stmt, /*as_set_rhs=*/false);
}

Result<std::string> Planner::ExplainStatement(const Statement& stmt) {
  if (const auto* sel = std::get_if<SelectStmt>(&stmt.node)) {
    BDBMS_ASSIGN_OR_RETURN(PlanNodePtr plan, PlanSelect(*sel));
    return ExplainPlan(*plan);
  }
  auto indent = [](const std::string& text) {
    std::string out;
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      out += "  " + text.substr(start, end - start) + "\n";
      start = end + 1;
    }
    return out;
  };
  if (const auto* upd = std::get_if<UpdateStmt>(&stmt.node)) {
    if (!ctx_->catalog->HasTable(upd->table)) {
      return Status::NotFound("no table " + upd->table);
    }
    // Same privilege the execution itself would demand.
    BDBMS_RETURN_IF_ERROR(
        ctx_->access->Check(user_, upd->table, Privilege::kUpdate));
    BDBMS_ASSIGN_OR_RETURN(PlanNodePtr plan,
                           PlanDmlScan(upd->table, upd->where.get()));
    std::string out = "Update " + upd->table + " SET ";
    for (size_t i = 0; i < upd->assignments.size(); ++i) {
      if (i > 0) out += ", ";
      out += upd->assignments[i].first;
    }
    return out + "\n" + indent(ExplainPlan(*plan));
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt.node)) {
    if (!ctx_->catalog->HasTable(del->table)) {
      return Status::NotFound("no table " + del->table);
    }
    BDBMS_RETURN_IF_ERROR(
        ctx_->access->Check(user_, del->table, Privilege::kDelete));
    BDBMS_ASSIGN_OR_RETURN(PlanNodePtr plan,
                           PlanDmlScan(del->table, del->where.get()));
    return "Delete " + del->table + "\n" + indent(ExplainPlan(*plan));
  }
  return Status::NotSupported("EXPLAIN supports SELECT, UPDATE and DELETE");
}

}  // namespace bdbms
