#include "plan/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "plan/cost_model.h"
#include "plan/expr_eval.h"
#include "sql/ast_printer.h"

namespace bdbms {

namespace {

// Splits an AND tree into its conjuncts.
void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kAnd) {
    SplitConjuncts(e->left.get(), out);
    SplitConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

void CollectColumnRefs(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kColumnRef) out->push_back(e);
  CollectColumnRefs(e->left.get(), out);
  CollectColumnRefs(e->right.get(), out);
  CollectColumnRefs(e->child.get(), out);
}

// Coerces a probe literal to the indexed column's type; empty when the
// comparison cannot be routed through the index.
std::optional<Value> CoerceProbe(const Value& literal, DataType column_type) {
  if (literal.is_null()) return std::nullopt;
  if (literal.type() == DataType::kDouble && column_type == DataType::kInt) {
    // Guard the int64 cast inside CoerceTo against overflow.
    double d = literal.as_double();
    if (d < -9.2e18 || d > 9.2e18) return std::nullopt;
  }
  auto coerced = literal.CoerceTo(column_type);
  if (!coerced.ok()) return std::nullopt;
  return *coerced;
}

// One comparison conjunct normalized to `column <op> value`.
struct ColumnComparison {
  size_t column = 0;
  BinOp op = BinOp::kEq;
  Value value;
  const Expr* conjunct = nullptr;
};

// One `column LIKE 'prefix...'` conjunct whose pattern starts with a
// literal prefix, foldable into a ScanPrefix probe. When the pattern is
// exactly `prefix%` the probe subsumes the predicate (`exact_tail`);
// otherwise the probe is a superset and the conjunct stays as a residual
// filter.
struct LikeComparison {
  size_t column = 0;
  std::string prefix;
  bool exact_tail = false;
  const Expr* conjunct = nullptr;
};

// The access path the planner settled on for one scan, plus its
// estimates: a B+-tree probe (`index`, possibly index-only) or an SP-GiST
// sequence-index probe (`seq_index`).
struct AccessChoice {
  const SecondaryIndex* index = nullptr;
  IndexProbe probe;
  bool index_only = false;
  const SequenceIndex* seq_index = nullptr;
  // Which trie descent `seq_index` performs: a prefix/exact probe
  // (SpgistScan), an NFA-guided regex search (SpgistRegexScan), or a
  // Smith–Waterman threshold search (SpgistAlignScan).
  enum class SeqKind { kProbe, kRegex, kAlign };
  SeqKind seq_kind = SeqKind::kProbe;
  SpgistScanNode::Probe seq_probe;
  std::optional<RegexProgram> seq_regex;
  std::string align_query;
  int align_min = 0;
  bool align_strict = false;
  std::string predicate_text;
  std::vector<const Expr*> consumed;
  double selectivity = 1.0;  // of the consumed conjuncts
  double plan_cost = 0.0;    // scan + residual-filter cost, for ranking
};

BinOp FlipComparison(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;
  }
}

// Extracts `col <op> literal` (either operand order) from a conjunct.
std::optional<ColumnComparison> MatchComparison(
    const Expr* e, const std::vector<BoundColumn>& scan_columns,
    const TableSchema& schema) {
  if (e->kind != ExprKind::kBinary) return std::nullopt;
  switch (e->bin_op) {
    case BinOp::kEq:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      break;
    default:
      return std::nullopt;
  }
  const Expr* col = e->left.get();
  const Expr* lit = e->right.get();
  BinOp op = e->bin_op;
  if (col->kind != ExprKind::kColumnRef) {
    std::swap(col, lit);
    op = FlipComparison(op);
  }
  if (col->kind != ExprKind::kColumnRef || lit->kind != ExprKind::kLiteral) {
    return std::nullopt;
  }
  auto bound = BindColumn(scan_columns, col->qualifier, col->column);
  if (!bound.ok()) return std::nullopt;
  std::optional<Value> probe =
      CoerceProbe(lit->literal, schema.column(*bound).type);
  if (!probe.has_value()) return std::nullopt;
  return ColumnComparison{*bound, op, std::move(*probe), e};
}

const ColumnStats* ColumnStatsOf(const TableStats* stats, size_t column) {
  if (stats == nullptr || column >= stats->columns.size()) return nullptr;
  return &stats->columns[column];
}

// Extracts `col LIKE 'prefix...'` from a conjunct: the column must be
// string-typed, the pattern a string literal with a nonempty literal
// prefix before the first wildcard.
std::optional<LikeComparison> MatchLikePrefix(
    const Expr* e, const std::vector<BoundColumn>& scan_columns,
    const TableSchema& schema) {
  if (e->kind != ExprKind::kBinary || e->bin_op != BinOp::kLike) {
    return std::nullopt;
  }
  const Expr* col = e->left.get();
  const Expr* lit = e->right.get();
  if (col->kind != ExprKind::kColumnRef || lit->kind != ExprKind::kLiteral ||
      !lit->literal.is_string()) {
    return std::nullopt;
  }
  auto bound = BindColumn(scan_columns, col->qualifier, col->column);
  if (!bound.ok()) return std::nullopt;
  DataType type = schema.column(*bound).type;
  if (type != DataType::kText && type != DataType::kSequence) {
    return std::nullopt;
  }
  const std::string& pattern = lit->literal.as_string();
  size_t wild = pattern.find_first_of("%_");
  if (wild == 0) return std::nullopt;  // leading wildcard: nothing to probe
  LikeComparison like;
  like.column = *bound;
  like.prefix =
      wild == std::string::npos ? pattern : pattern.substr(0, wild);
  like.exact_tail =
      wild != std::string::npos && wild + 1 == pattern.size() &&
      pattern[wild] == '%';
  like.conjunct = e;
  return like;
}

// A conjunct usable as an NFA-guided trie search: `col MATCHES '<regex>'`,
// or a LIKE pattern with a leading wildcard (nothing to prefix-probe)
// rewritten into the regex dialect.
struct RegexComparison {
  size_t column = 0;
  RegexProgram program;
  const Expr* conjunct = nullptr;
};

// Rewrites a LIKE pattern into the trie regex dialect: `%` → `.*`,
// `_` → `.`, regex metacharacters escaped.
std::string LikePatternToRegex(const std::string& pattern) {
  std::string out;
  for (char c : pattern) {
    if (c == '%') {
      out += ".*";
    } else if (c == '_') {
      out += '.';
    } else {
      if (std::string_view(".[]*+?\\").find(c) != std::string_view::npos) {
        out += '\\';
      }
      out += c;
    }
  }
  return out;
}

// Extracts a regex search from a conjunct. A malformed MATCHES pattern is
// not a candidate — the conjunct stays a residual filter, whose evaluation
// reports the same compile error.
std::optional<RegexComparison> MatchRegexSearch(
    const Expr* e, const std::vector<BoundColumn>& scan_columns,
    const TableSchema& schema) {
  if (e->kind != ExprKind::kBinary) return std::nullopt;
  const Expr* col = e->left.get();
  const Expr* lit = e->right.get();
  if (col->kind != ExprKind::kColumnRef || lit->kind != ExprKind::kLiteral ||
      !lit->literal.is_string()) {
    return std::nullopt;
  }
  std::string pattern;
  if (e->bin_op == BinOp::kMatches) {
    pattern = lit->literal.as_string();
  } else if (e->bin_op == BinOp::kLike) {
    // Patterns with a literal prefix take the cheaper prefix descent
    // (MatchLikePrefix); the regex path covers the leading-wildcard rest.
    const std::string& p = lit->literal.as_string();
    if (p.empty() || (p[0] != '%' && p[0] != '_')) return std::nullopt;
    pattern = LikePatternToRegex(p);
  } else {
    return std::nullopt;
  }
  auto bound = BindColumn(scan_columns, col->qualifier, col->column);
  if (!bound.ok()) return std::nullopt;
  DataType type = schema.column(*bound).type;
  if (type != DataType::kText && type != DataType::kSequence) {
    return std::nullopt;
  }
  auto program = RegexProgram::Compile(pattern);
  if (!program.ok()) return std::nullopt;
  return RegexComparison{*bound, std::move(*program), e};
}

// `ALIGN(col, 'seq') >= n` (or > n, either operand order): a local-
// alignment score lower bound, answerable by the trie's shared-prefix
// Smith–Waterman descent. Upper bounds keep nothing prunable and stay
// residual filters.
struct AlignComparison {
  size_t column = 0;
  std::string query;
  int min_score = 0;
  bool strict = false;  // true for >, false for >=
  const Expr* conjunct = nullptr;
};

std::optional<AlignComparison> MatchAlignThreshold(
    const Expr* e, const std::vector<BoundColumn>& scan_columns,
    const TableSchema& schema) {
  if (e->kind != ExprKind::kBinary) return std::nullopt;
  BinOp op = e->bin_op;
  const Expr* fn = e->left.get();
  const Expr* lit = e->right.get();
  if (fn->kind != ExprKind::kFunction) {
    std::swap(fn, lit);
    op = FlipComparison(op);
  }
  if (fn->kind != ExprKind::kFunction || fn->scalar_fn != ScalarFn::kAlign) {
    return std::nullopt;
  }
  if (op != BinOp::kGe && op != BinOp::kGt) return std::nullopt;
  if (lit->kind != ExprKind::kLiteral ||
      lit->literal.type() != DataType::kInt) {
    return std::nullopt;
  }
  const Expr* col = fn->left.get();
  const Expr* query = fn->right.get();
  if (col->kind != ExprKind::kColumnRef ||
      query->kind != ExprKind::kLiteral || !query->literal.is_string()) {
    return std::nullopt;
  }
  auto bound = BindColumn(scan_columns, col->qualifier, col->column);
  if (!bound.ok()) return std::nullopt;
  DataType type = schema.column(*bound).type;
  if (type != DataType::kText && type != DataType::kSequence) {
    return std::nullopt;
  }
  return AlignComparison{*bound, query->literal.as_string(),
                         static_cast<int>(lit->literal.as_int()),
                         op == BinOp::kGt, e};
}

// Enumerates candidate access paths over the pushed conjuncts, costs each
// alternative as scan + residual filter, and keeps the cheapest —
// returning nullopt when the sequential scan wins or no candidate exists.
//
// Per B+-tree index (composite or not): equality conjuncts are matched to
// the leading key columns; the first key column without an equality may
// take the folded range bounds on it (tightest per side) or one LIKE
// prefix instead. When `covering_columns` is given and the index's key
// columns contain all of them, the candidate becomes an *index-only* scan
// (answered from the keys, no base-table fetches) — even with no probe at
// all, where it competes as a cheaper full pass over the index.
//
// Per SP-GiST sequence index: a LIKE-prefix or string-equality conjunct
// on the indexed column becomes a trie descent (SpgistScan).
std::optional<AccessChoice> ChooseAccessPath(
    const Table& table, const std::vector<BoundColumn>& scan_columns,
    const std::vector<const Expr*>& conjuncts, const TableStats* stats,
    double table_rows, const std::vector<size_t>* covering_columns) {
  std::vector<ColumnComparison> comparisons;
  std::vector<LikeComparison> likes;
  std::vector<RegexComparison> regexes;
  std::vector<AlignComparison> aligns;
  for (const Expr* e : conjuncts) {
    if (auto cmp = MatchComparison(e, scan_columns, table.schema())) {
      comparisons.push_back(std::move(*cmp));
    } else if (auto like = MatchLikePrefix(e, scan_columns,
                                           table.schema())) {
      likes.push_back(std::move(*like));
    } else if (auto re = MatchRegexSearch(e, scan_columns, table.schema())) {
      regexes.push_back(std::move(*re));
    } else if (auto al = MatchAlignThreshold(e, scan_columns,
                                             table.schema())) {
      aligns.push_back(std::move(*al));
    }
  }
  std::vector<AccessChoice> candidates;
  for (const auto& owned : table.indexes()) {
    const SecondaryIndex* index = owned.get();
    AccessChoice choice;
    choice.index = index;
    double sel = 1.0;
    auto add_text = [&choice](const Expr* e) {
      if (!choice.predicate_text.empty()) choice.predicate_text += " AND ";
      choice.predicate_text += ExprToString(*e);
    };
    // Leading-prefix equalities, one per key column until the chain breaks.
    size_t depth = 0;
    for (; depth < index->columns().size(); ++depth) {
      size_t col = index->columns()[depth];
      const ColumnComparison* eq = nullptr;
      for (const ColumnComparison& cmp : comparisons) {
        if (cmp.column == col && cmp.op == BinOp::kEq) {
          eq = &cmp;
          break;
        }
      }
      if (eq == nullptr) break;
      choice.probe.eq.push_back(eq->value);
      choice.consumed.push_back(eq->conjunct);
      add_text(eq->conjunct);
      sel *= EqSelectivity(ColumnStatsOf(stats, col), eq->value);
    }
    // One trailing constraint on the next key column: folded range bounds,
    // or a LIKE prefix when no range applies.
    if (depth < index->columns().size()) {
      size_t col = index->columns()[depth];
      bool ranged = false;
      for (const ColumnComparison& cmp : comparisons) {
        if (cmp.column != col || cmp.op == BinOp::kEq) continue;
        ranged = true;
        bool is_lower = cmp.op == BinOp::kGt || cmp.op == BinOp::kGe;
        bool inclusive = cmp.op == BinOp::kGe || cmp.op == BinOp::kLe;
        std::optional<IndexBound>& slot =
            is_lower ? choice.probe.lo : choice.probe.hi;
        IndexBound bound{cmp.value, inclusive};
        if (!slot.has_value()) {
          slot = std::move(bound);
        } else {
          // Keep the tighter bound; on equal values exclusive is tighter.
          int c = bound.value.Compare(slot->value);
          bool tighter = is_lower ? c > 0 : c < 0;
          if (c == 0 && !bound.inclusive) tighter = true;
          if (tighter) slot = std::move(bound);
        }
        add_text(cmp.conjunct);
        choice.consumed.push_back(cmp.conjunct);
      }
      if (ranged) {
        sel *= RangeSelectivity(ColumnStatsOf(stats, col), choice.probe.lo,
                                choice.probe.hi);
      } else {
        for (const LikeComparison& like : likes) {
          if (like.column != col) continue;
          choice.probe.like_prefix = like.prefix;
          add_text(like.conjunct);
          // A pure `prefix%` pattern is subsumed by the probe; any other
          // pattern keeps the conjunct as a residual filter over the
          // probe's superset.
          if (like.exact_tail) choice.consumed.push_back(like.conjunct);
          sel *= cost::kDefaultLike;
          break;
        }
      }
    }
    bool has_probe = !choice.probe.eq.empty() ||
                     choice.probe.lo.has_value() ||
                     choice.probe.hi.has_value() ||
                     choice.probe.like_prefix.has_value();
    bool covering = covering_columns != nullptr;
    if (covering) {
      for (size_t need : *covering_columns) {
        if (std::count(index->columns().begin(), index->columns().end(),
                       need) == 0) {
          covering = false;
          break;
        }
      }
    }
    if (!has_probe && !covering) continue;
    choice.index_only = covering;
    choice.selectivity = has_probe ? sel : 1.0;
    candidates.push_back(std::move(choice));
  }
  for (const auto& owned : table.sequence_indexes()) {
    const SequenceIndex* index = owned.get();
    size_t col = index->column();
    AccessChoice choice;
    choice.seq_index = index;
    bool built = false;
    for (const LikeComparison& like : likes) {
      if (like.column != col) continue;
      choice.seq_probe = {/*exact=*/false, like.prefix};
      choice.predicate_text = ExprToString(*like.conjunct);
      if (like.exact_tail) choice.consumed.push_back(like.conjunct);
      choice.selectivity = cost::kDefaultLike;
      built = true;
      break;
    }
    if (!built) {
      for (const ColumnComparison& cmp : comparisons) {
        if (cmp.column != col || cmp.op != BinOp::kEq ||
            !cmp.value.is_string()) {
          continue;
        }
        choice.seq_probe = {/*exact=*/true, cmp.value.as_string()};
        choice.predicate_text = ExprToString(*cmp.conjunct);
        choice.consumed.push_back(cmp.conjunct);
        choice.selectivity =
            EqSelectivity(ColumnStatsOf(stats, col), cmp.value);
        built = true;
        break;
      }
    }
    if (!built) {
      // NFA-guided regex descent: the trie prunes every subtree whose
      // state set goes dead, and each candidate's key fully matched, so
      // the conjunct is consumed (snapshot staleness is re-checked by the
      // scan against the visible cell).
      for (const RegexComparison& re : regexes) {
        if (re.column != col) continue;
        choice.seq_kind = AccessChoice::SeqKind::kRegex;
        choice.seq_regex = re.program;
        choice.predicate_text = ExprToString(*re.conjunct);
        choice.consumed.push_back(re.conjunct);
        choice.selectivity = cost::kDefaultRegex;
        built = true;
        break;
      }
    }
    if (!built) {
      for (const AlignComparison& al : aligns) {
        if (al.column != col) continue;
        choice.seq_kind = AccessChoice::SeqKind::kAlign;
        choice.align_query = al.query;
        choice.align_min = al.min_score;
        choice.align_strict = al.strict;
        choice.predicate_text = ExprToString(*al.conjunct);
        choice.consumed.push_back(al.conjunct);
        choice.selectivity = cost::kDefaultAlign;
        built = true;
        break;
      }
    }
    if (!built) continue;
    candidates.push_back(std::move(choice));
  }
  if (candidates.empty()) return std::nullopt;

  // Rank full scan alternatives: access cost plus filtering whatever the
  // probe did not consume (each alternative filters a different residue).
  // Ties keep the earliest candidate, so B+-tree probes win over an
  // equally priced trie descent.
  double total = static_cast<double>(conjuncts.size());
  double seq_cost =
      SeqScanCost(table_rows) + table_rows * cost::kFilterTuple * total;
  std::optional<AccessChoice> best;
  for (AccessChoice& choice : candidates) {
    double match = table_rows * choice.selectivity;
    double residual =
        total - static_cast<double>(choice.consumed.size());
    double access = choice.index_only
                        ? IndexOnlyScanCost(table_rows, match)
                        : IndexScanCost(table_rows, match);
    choice.plan_cost = access + match * cost::kFilterTuple * residual;
    if (choice.plan_cost >= seq_cost) continue;
    if (!best.has_value() || choice.plan_cost < best->plan_cost) {
      best = std::move(choice);
    }
  }
  return best;
}

// Collects the indices (within `columns`) of every column the statement
// could read from its single scan's tuples; false when coverage cannot be
// established (an unknown column disables the index-only path — the
// binding error, if any, surfaces identically either way).
bool ComputeRequiredColumns(const SelectStmt& stmt,
                            const std::vector<BoundColumn>& columns,
                            std::vector<size_t>* out) {
  std::set<size_t> needed;
  auto add_all = [&] {
    for (size_t i = 0; i < columns.size(); ++i) needed.insert(i);
  };
  std::vector<const Expr*> refs;
  if (stmt.star) {
    add_all();
  } else {
    for (const SelectItem& item : stmt.items) {
      CollectColumnRefs(item.expr.get(), &refs);
      for (const std::string& col : item.promote_columns) {
        auto bound = BindColumn(columns, "", col);
        if (!bound.ok()) return false;
        needed.insert(*bound);
      }
    }
  }
  CollectColumnRefs(stmt.where.get(), &refs);
  CollectColumnRefs(stmt.having.get(), &refs);
  for (const Expr* ref : refs) {
    if (ref->column == "*") {  // qualifier.* projection
      add_all();
      continue;
    }
    auto bound = BindColumn(columns, ref->qualifier, ref->column);
    if (!bound.ok()) return false;
    needed.insert(*bound);
  }
  for (const std::string& col : stmt.group_by) {
    auto bound = BindColumn(columns, "", col);
    if (!bound.ok()) return false;
    needed.insert(*bound);
  }
  // ORDER BY binds against the projected output; a name that also binds
  // here is a base column flowing through (include it), anything else is
  // a projection alias the scan need not cover. Expression keys read
  // whatever columns they reference.
  for (const OrderKey& key : stmt.order_by) {
    if (key.expr) {
      std::vector<const Expr*> key_refs;
      CollectColumnRefs(key.expr.get(), &key_refs);
      for (const Expr* ref : key_refs) {
        auto bound = BindColumn(columns, ref->qualifier, ref->column);
        if (!bound.ok()) return false;
        needed.insert(*bound);
      }
      continue;
    }
    auto bound = BindColumn(columns, "", key.column);
    if (bound.ok()) needed.insert(*bound);
  }
  out->assign(needed.begin(), needed.end());
  return true;
}

// Appends a Filter node for the given conjuncts (no-op when empty),
// estimating its output with the conjuncts' combined selectivity.
PlanNodePtr WrapFilter(PlanNodePtr plan, std::vector<const Expr*> conjuncts,
                       const StatsResolver& resolver) {
  if (conjuncts.empty()) return plan;
  double sel = 1.0;
  for (const Expr* e : conjuncts) {
    sel *= EstimateConjunctSelectivity(*e, resolver);
  }
  double child_rows = plan->est_rows();
  double child_cost = plan->est_cost();
  double npred = static_cast<double>(conjuncts.size());
  auto filter =
      std::make_unique<FilterNode>(std::move(plan), std::move(conjuncts));
  filter->SetEstimate(ClampRows(child_rows * sel, child_rows),
                      child_cost + child_rows * cost::kFilterTuple * npred);
  return filter;
}

// Output column name of a select item in the aggregate pipeline.
std::string AggregateItemName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  return item.expr->kind == ExprKind::kColumnRef ? item.expr->column : "expr";
}

// An equi-join conjunct `a.col = b.col` between two distinct FROM entries,
// enforceable as a HashJoin key.
struct JoinPred {
  const Expr* expr = nullptr;
  size_t scan[2] = {0, 0};      // FROM indices of the two sides
  size_t local_col[2] = {0, 0};  // column index within each side's scan
  bool used = false;
};

}  // namespace

Result<PlanNodePtr> Planner::BuildScan(
    const TableRef& ref, std::vector<const Expr*> conjuncts,
    bool attach_metadata, bool try_ann_interval,
    const std::vector<size_t>* covering_columns) {
  if (!ctx_->catalog->HasTable(ref.table)) {
    return Status::NotFound("no table " + ref.table);
  }
  if (attach_metadata) {
    BDBMS_RETURN_IF_ERROR(
        ctx_->access->Check(user_, ref.table, Privilege::kSelect));
  }
  BDBMS_ASSIGN_OR_RETURN(Table * table, ctx_->tables(ref.table));

  std::vector<std::string> ann_names = ref.annotation_tables;
  if (ref.all_annotations) ann_names = ctx_->annotations->ListFor(ref.table);
  for (const std::string& a : ann_names) {
    if (!ctx_->catalog->HasAnnotationTable(ref.table, a)) {
      return Status::NotFound("no annotation table " + a + " on " + ref.table);
    }
  }

  std::string qualifier = ref.alias.empty() ? ref.table : ref.alias;
  std::vector<BoundColumn> scan_columns =
      QualifiedColumns(table->schema(), qualifier);

  // Planning cardinality: the ANALYZE snapshot when one exists (stale
  // until the next ANALYZE), else the live row count.
  const TableStats* stats = ctx_->catalog->GetStats(ref.table);
  double table_rows = stats != nullptr
                          ? static_cast<double>(stats->row_count)
                          : static_cast<double>(table->row_count());

  // Index-only scans answer from index keys alone; requesting annotation
  // propagation means fetching base rows anyway, so the path is off.
  if (!ann_names.empty()) covering_columns = nullptr;
  std::optional<AccessChoice> choice = ChooseAccessPath(
      *table, scan_columns, conjuncts, stats, table_rows, covering_columns);
  // A covering scan without any probe still reads every index entry; for
  // an AWHERE query the annotation-interval scan visits only the (often
  // far fewer) potentially annotated rows, so the probe-less pass must
  // not displace it.
  if (choice.has_value() && try_ann_interval && attach_metadata &&
      choice->seq_index == nullptr && choice->probe.eq.empty() &&
      !choice->probe.lo.has_value() && !choice->probe.hi.has_value() &&
      !choice->probe.like_prefix.has_value()) {
    choice.reset();
  }
  PlanNodePtr scan;
  if (choice.has_value()) {
    // Drop the conjuncts the probe consumed; the rest filter above.
    std::vector<const Expr*> residual;
    for (const Expr* e : conjuncts) {
      bool consumed = false;
      for (const Expr* c : choice->consumed) consumed |= c == e;
      if (!consumed) residual.push_back(e);
    }
    conjuncts = std::move(residual);
    double match = table_rows * choice->selectivity;
    if (choice->seq_index != nullptr) {
      switch (choice->seq_kind) {
        case AccessChoice::SeqKind::kProbe:
          scan = std::make_unique<SpgistScanNode>(
              ctx_, table, ref.table, qualifier, std::move(ann_names),
              attach_metadata, choice->seq_index,
              std::move(choice->seq_probe),
              std::move(choice->predicate_text));
          break;
        case AccessChoice::SeqKind::kRegex:
          scan = std::make_unique<SpgistRegexScanNode>(
              ctx_, table, ref.table, qualifier, std::move(ann_names),
              attach_metadata, choice->seq_index,
              std::move(*choice->seq_regex),
              std::move(choice->predicate_text));
          break;
        case AccessChoice::SeqKind::kAlign:
          scan = std::make_unique<SpgistAlignScanNode>(
              ctx_, table, ref.table, qualifier, std::move(ann_names),
              attach_metadata, choice->seq_index,
              std::move(choice->align_query), choice->align_min,
              choice->align_strict, std::move(choice->predicate_text));
          break;
      }
      scan->SetEstimate(ClampRows(match, table_rows),
                        IndexScanCost(table_rows, match));
    } else if (choice->index_only) {
      scan = std::make_unique<IndexOnlyScanNode>(
          ctx_, table, ref.table, qualifier, attach_metadata, choice->index,
          std::move(choice->probe), std::move(choice->predicate_text));
      scan->SetEstimate(ClampRows(match, table_rows),
                        IndexOnlyScanCost(table_rows, match));
    } else {
      scan = std::make_unique<IndexScanNode>(
          ctx_, table, ref.table, qualifier, std::move(ann_names),
          attach_metadata, choice->index, std::move(choice->probe),
          std::move(choice->predicate_text));
      scan->SetEstimate(ClampRows(match, table_rows),
                        IndexScanCost(table_rows, match));
    }
  } else if (try_ann_interval && attach_metadata) {
    scan = std::make_unique<AnnIntervalScanNode>(ctx_, table, ref.table,
                                                 qualifier,
                                                 std::move(ann_names));
    double rows =
        ClampRows(table_rows * cost::kAnnIntervalFraction, table_rows);
    scan->SetEstimate(rows, SeqScanCost(rows));
  } else {
    scan = std::make_unique<SeqScanNode>(ctx_, table, ref.table, qualifier,
                                         std::move(ann_names),
                                         attach_metadata);
    scan->SetEstimate(table_rows, SeqScanCost(table_rows));
  }
  StatsResolver resolver = [&](const Expr& col) -> const ColumnStats* {
    auto bound = BindColumn(scan_columns, col.qualifier, col.column);
    if (!bound.ok()) return nullptr;
    return ColumnStatsOf(stats, *bound);
  };
  return WrapFilter(std::move(scan), std::move(conjuncts), resolver);
}

Result<PlanNodePtr> Planner::PlanFromWhere(const SelectStmt& stmt,
                                           bool allow_index_only) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }
  size_t nscans = stmt.from.size();

  // The joined column space (FROM order), for routing conjuncts to scans
  // and resolving statistics by name above the join.
  std::vector<BoundColumn> joined;
  std::vector<const ColumnStats*> joined_stats;
  std::vector<std::pair<size_t, size_t>> scan_ranges;  // [begin, end) per scan
  std::vector<const TableStats*> table_stats(nscans, nullptr);
  for (size_t i = 0; i < nscans; ++i) {
    const TableRef& ref = stmt.from[i];
    // GetSchema doubles as the existence check (NotFound on unknown).
    BDBMS_ASSIGN_OR_RETURN(TableSchema schema,
                           ctx_->catalog->GetSchema(ref.table));
    table_stats[i] = ctx_->catalog->GetStats(ref.table);
    std::string qualifier = ref.alias.empty() ? ref.table : ref.alias;
    size_t begin = joined.size();
    size_t local = 0;
    for (BoundColumn& c : QualifiedColumns(schema, qualifier)) {
      joined.push_back(std::move(c));
      joined_stats.push_back(ColumnStatsOf(table_stats[i], local++));
    }
    scan_ranges.emplace_back(begin, joined.size());
  }

  // Route each WHERE conjunct to the single scan it touches, if any.
  // Conjuncts that do not bind cleanly (unknown or ambiguous columns, or
  // columns from several tables) stay in the residual filter, preserving
  // the executor's lazy binding-error behaviour.
  std::vector<const Expr*> conjuncts;
  if (stmt.where) SplitConjuncts(stmt.where.get(), &conjuncts);
  std::vector<std::vector<const Expr*>> pushed(nscans);
  std::vector<const Expr*> residual;
  for (const Expr* conjunct : conjuncts) {
    std::vector<const Expr*> refs;
    CollectColumnRefs(conjunct, &refs);
    size_t owner = nscans;  // sentinel: unroutable
    bool routable = !refs.empty();
    for (const Expr* ref : refs) {
      auto bound = BindColumn(joined, ref->qualifier, ref->column);
      if (!bound.ok()) {
        routable = false;
        break;
      }
      size_t scan = 0;
      while (*bound >= scan_ranges[scan].second) ++scan;
      if (owner == nscans) {
        owner = scan;
      } else if (owner != scan) {
        routable = false;
        break;
      }
    }
    if (routable && owner < nscans) {
      pushed[owner].push_back(conjunct);
    } else {
      residual.push_back(conjunct);
    }
  }

  // Lift equi-join conjuncts (`a.col = b.col` across two FROM entries)
  // out of the residual: they become HashJoin keys.
  std::vector<JoinPred> join_preds;
  if (nscans > 1) {
    std::vector<const Expr*> kept;
    for (const Expr* e : residual) {
      bool lifted = false;
      if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kEq &&
          e->left && e->left->kind == ExprKind::kColumnRef && e->right &&
          e->right->kind == ExprKind::kColumnRef) {
        auto lb = BindColumn(joined, e->left->qualifier, e->left->column);
        auto rb = BindColumn(joined, e->right->qualifier, e->right->column);
        if (lb.ok() && rb.ok()) {
          size_t ls = 0, rs = 0;
          while (*lb >= scan_ranges[ls].second) ++ls;
          while (*rb >= scan_ranges[rs].second) ++rs;
          if (ls != rs) {
            JoinPred pred;
            pred.expr = e;
            pred.scan[0] = ls;
            pred.local_col[0] = *lb - scan_ranges[ls].first;
            pred.scan[1] = rs;
            pred.local_col[1] = *rb - scan_ranges[rs].first;
            join_preds.push_back(pred);
            lifted = true;
          }
        }
      }
      if (!lifted) kept.push_back(e);
    }
    residual = std::move(kept);
  }

  // AWHERE interval pushdown only applies to a non-joined scan whose
  // candidates are exactly the potentially annotated rows.
  bool try_ann_interval = nscans == 1 && stmt.awhere != nullptr;

  // Index-only eligibility: a single-table statement whose full
  // referenced-column set is known. The join machinery reads arbitrary
  // columns across the joined space, so joins keep fetching base rows.
  std::vector<size_t> required_columns;
  bool have_required =
      allow_index_only && nscans == 1 &&
      ComputeRequiredColumns(stmt, joined, &required_columns);

  std::vector<PlanNodePtr> scans(nscans);
  std::vector<double> scan_rows(nscans, 0.0);
  std::vector<size_t> widths(nscans, 0);
  for (size_t i = 0; i < nscans; ++i) {
    BDBMS_ASSIGN_OR_RETURN(
        scans[i], BuildScan(stmt.from[i], std::move(pushed[i]),
                            /*attach_metadata=*/true, try_ann_interval,
                            have_required ? &required_columns : nullptr));
    scan_rows[i] = scans[i]->est_rows();
    widths[i] = scan_ranges[i].second - scan_ranges[i].first;
  }

  // NDV of one side of a join predicate: the ANALYZE value when present,
  // else the filtered scan cardinality (i.e. assume the key is unique).
  auto column_ndv = [&](size_t scan, size_t local) {
    const ColumnStats* cs = ColumnStatsOf(table_stats[scan], local);
    if (cs != nullptr && cs->ndv > 0) return static_cast<double>(cs->ndv);
    return std::max(scan_rows[scan], 1.0);
  };

  // Greedy join order (docs/planner.md): start from the smallest
  // estimated input, then repeatedly fold in the not-yet-joined relation
  // minimizing the estimated intermediate cardinality, preferring
  // relations reachable through an equi-join predicate so cross products
  // come last. Both join operators materialize their right input, so the
  // smaller of (accumulated plan, new relation) goes right — the build
  // side of a HashJoin — and the larger streams through as the probe.
  PlanNodePtr plan;
  std::vector<bool> in_set(nscans, false);
  std::vector<size_t> col_offset(nscans, 0);
  {
    size_t start = 0;
    for (size_t i = 1; i < nscans; ++i) {
      if (scan_rows[i] < scan_rows[start]) start = i;
    }
    plan = std::move(scans[start]);
    in_set[start] = true;
    col_offset[start] = 0;
    size_t width = widths[start];
    double cur_rows = scan_rows[start];

    for (size_t step = 1; step < nscans; ++step) {
      size_t best = nscans;
      double best_rows = std::numeric_limits<double>::infinity();
      bool best_connected = false;
      for (size_t j = 0; j < nscans; ++j) {
        if (in_set[j]) continue;
        double est = cur_rows * scan_rows[j];
        bool connected = false;
        for (const JoinPred& pred : join_preds) {
          if (pred.used) continue;
          for (int side = 0; side < 2; ++side) {
            if (pred.scan[side] != j || !in_set[pred.scan[1 - side]]) {
              continue;
            }
            connected = true;
            double ndv =
                std::max(column_ndv(pred.scan[0], pred.local_col[0]),
                         column_ndv(pred.scan[1], pred.local_col[1]));
            est /= std::max(ndv, 1.0);
          }
        }
        est = ClampRows(est, cur_rows * scan_rows[j]);
        if (best == nscans || (connected && !best_connected) ||
            (connected == best_connected && est < best_rows)) {
          best = j;
          best_rows = est;
          best_connected = connected;
        }
      }

      // Collect the predicates connecting `best` to the joined set, as
      // (column in the accumulated plan, column local to the new scan).
      std::vector<std::pair<size_t, size_t>> keys;
      std::string predicate_text;
      for (JoinPred& pred : join_preds) {
        if (pred.used) continue;
        for (int side = 0; side < 2; ++side) {
          size_t other = 1 - side;
          if (pred.scan[side] != best || !in_set[pred.scan[other]]) continue;
          keys.emplace_back(
              col_offset[pred.scan[other]] + pred.local_col[other],
              pred.local_col[side]);
          if (!predicate_text.empty()) predicate_text += " AND ";
          predicate_text += ExprToString(*pred.expr);
          pred.used = true;
          break;
        }
      }

      // Orientation: the smaller side builds (right), the larger probes.
      bool new_is_probe = scan_rows[best] > cur_rows;
      PlanNodePtr left = std::move(plan);
      PlanNodePtr right = std::move(scans[best]);
      if (new_is_probe) {
        std::swap(left, right);
        for (auto& [set_col, new_col] : keys) std::swap(set_col, new_col);
        // The output layout becomes new-scan columns ++ accumulated ones.
        for (size_t i = 0; i < nscans; ++i) {
          if (in_set[i]) col_offset[i] += widths[best];
        }
        col_offset[best] = 0;
      } else {
        col_offset[best] = width;
      }
      double build_rows = std::min(cur_rows, scan_rows[best]);
      double probe_rows = std::max(cur_rows, scan_rows[best]);
      double both_cost = left->est_cost() + right->est_cost();
      PlanNodePtr join;
      double join_cost;
      if (!keys.empty()) {
        join_cost = both_cost + build_rows * cost::kHashBuild +
                    probe_rows * cost::kHashProbe;
        join = std::make_unique<HashJoinNode>(std::move(left),
                                              std::move(right),
                                              std::move(keys),
                                              std::move(predicate_text));
      } else {
        best_rows = ClampRows(cur_rows * scan_rows[best],
                              cur_rows * scan_rows[best]);
        join_cost = both_cost +
                    cur_rows * scan_rows[best] * cost::kNlPair;
        join = std::make_unique<NestedLoopJoinNode>(std::move(left),
                                                    std::move(right));
      }
      join->SetEstimate(best_rows, join_cost);
      plan = std::move(join);
      in_set[best] = true;
      width += widths[best];
      cur_rows = best_rows;
    }
  }
  // Did the physical column layout end up differing from FROM order?
  bool order_changed = false;
  for (size_t i = 0; i < nscans; ++i) {
    if (col_offset[i] != scan_ranges[i].first) order_changed = true;
  }

  // A reordered join changes the physical column order; SELECT * exposes
  // it, so restore FROM order with a direct projection that keeps names,
  // qualifiers and annotations intact.
  if (stmt.star && order_changed && nscans > 1) {
    std::vector<ProjectNode::Item> items;
    for (size_t i = 0; i < nscans; ++i) {
      for (size_t c = 0; c < widths[i]; ++c) {
        ProjectNode::Item item;
        item.is_direct = true;
        item.direct_index = col_offset[i] + c;
        item.name = joined[scan_ranges[i].first + c].name;
        item.qualifier = joined[scan_ranges[i].first + c].qualifier;
        items.push_back(std::move(item));
      }
    }
    double rows = plan->est_rows();
    double cst = plan->est_cost() + rows * cost::kPipeTuple;
    plan = std::make_unique<ProjectNode>(std::move(plan), std::move(items));
    plan->SetEstimate(rows, cst);
  }

  StatsResolver resolver = [&](const Expr& col) -> const ColumnStats* {
    auto bound = BindColumn(joined, col.qualifier, col.column);
    return bound.ok() ? joined_stats[*bound] : nullptr;
  };
  plan = WrapFilter(std::move(plan), std::move(residual), resolver);
  if (stmt.awhere) {
    double child_rows = plan->est_rows();
    double child_cost = plan->est_cost();
    plan = std::make_unique<AWhereNode>(std::move(plan), stmt.awhere.get());
    plan->SetEstimate(ClampRows(child_rows * cost::kAnnMatchFraction,
                                child_rows),
                      child_cost + child_rows * cost::kFilterTuple);
  }
  return plan;
}

Result<PlanNodePtr> Planner::PlanTargetScan(const SelectStmt& stmt) {
  // Annotation commands address cells of the base rows; keep every scan
  // row-fetching (no index-only shortcut).
  return PlanFromWhere(stmt, /*allow_index_only=*/false);
}

Result<PlanNodePtr> Planner::PlanDmlScan(const std::string& table,
                                         const Expr* where) {
  TableRef ref;
  ref.table = table;
  std::vector<const Expr*> conjuncts;
  if (where != nullptr) SplitConjuncts(where, &conjuncts);
  // Conjuncts that do not bind against the table stay residual so binding
  // errors surface at evaluation time, exactly like the WHERE filter.
  return BuildScan(ref, std::move(conjuncts), /*attach_metadata=*/false,
                   /*try_ann_interval=*/false,
                   /*covering_columns=*/nullptr);
}

Result<PlanNodePtr> Planner::TryPlanTopKScan(const SelectStmt& stmt) {
  // Shape gate: exactly one table, no clause that would filter or regroup
  // rows after the scan (any of those would make "the k nearest index
  // entries" the wrong k), one ascending DISTANCE(col, 'literal') order
  // key, and a LIMIT to bound the traversal.
  if (stmt.from.size() != 1 || stmt.where != nullptr ||
      stmt.awhere != nullptr || stmt.filter != nullptr ||
      !stmt.group_by.empty() || stmt.having != nullptr ||
      stmt.ahaving != nullptr || stmt.distinct ||
      stmt.set_op != SetOpKind::kNone || !stmt.limit.has_value() ||
      stmt.order_by.size() != 1) {
    return PlanNodePtr();
  }
  for (const SelectItem& item : stmt.items) {
    if (item.expr->ContainsAggregate()) return PlanNodePtr();
  }
  const OrderKey& key = stmt.order_by[0];
  if (key.descending || key.expr == nullptr ||
      key.expr->kind != ExprKind::kFunction ||
      key.expr->scalar_fn != ScalarFn::kDistance) {
    return PlanNodePtr();
  }
  const Expr* col = key.expr->left.get();
  const Expr* target = key.expr->right.get();
  if (col->kind != ExprKind::kColumnRef ||
      target->kind != ExprKind::kLiteral || !target->literal.is_string()) {
    return PlanNodePtr();
  }

  const TableRef& ref = stmt.from[0];
  if (!ctx_->catalog->HasTable(ref.table)) return PlanNodePtr();
  BDBMS_ASSIGN_OR_RETURN(Table * table, ctx_->tables(ref.table));
  std::string qualifier = ref.alias.empty() ? ref.table : ref.alias;
  std::vector<BoundColumn> scan_columns =
      QualifiedColumns(table->schema(), qualifier);
  auto bound = BindColumn(scan_columns, col->qualifier, col->column);
  if (!bound.ok()) return PlanNodePtr();
  const SequenceIndex* index = nullptr;
  for (const auto& owned : table->sequence_indexes()) {
    if (owned->column() == *bound) {
      index = owned.get();
      break;
    }
  }
  if (index == nullptr) return PlanNodePtr();

  // From here the path is committed; real errors surface.
  BDBMS_RETURN_IF_ERROR(
      ctx_->access->Check(user_, ref.table, Privilege::kSelect));
  std::vector<std::string> ann_names = ref.annotation_tables;
  if (ref.all_annotations) ann_names = ctx_->annotations->ListFor(ref.table);
  for (const std::string& a : ann_names) {
    if (!ctx_->catalog->HasAnnotationTable(ref.table, a)) {
      return Status::NotFound("no annotation table " + a + " on " + ref.table);
    }
  }

  size_t k = static_cast<size_t>(*stmt.limit);
  const TableStats* stats = ctx_->catalog->GetStats(ref.table);
  double table_rows = stats != nullptr
                          ? static_cast<double>(stats->row_count)
                          : static_cast<double>(table->row_count());
  std::string predicate_text =
      "(" + ExprToString(*key.expr) + " k=" + std::to_string(k) + ")";
  PlanNodePtr scan = std::make_unique<SpgistTopKScanNode>(
      ctx_, table, ref.table, qualifier, std::move(ann_names),
      /*attach_metadata=*/true, index, target->literal.as_string(), k,
      std::move(predicate_text));
  double rows = ClampRows(
      std::min(table_rows, static_cast<double>(k)), table_rows);
  scan->SetEstimate(rows, IndexScanCost(table_rows, rows));
  return scan;
}

Result<PlanNodePtr> Planner::PlanSelectImpl(const SelectStmt& stmt,
                                            bool as_set_rhs) {
  PlanNodePtr plan;
  bool order_consumed = false;
  if (!as_set_rhs) {
    BDBMS_ASSIGN_OR_RETURN(plan, TryPlanTopKScan(stmt));
    order_consumed = plan != nullptr;
  }
  if (plan == nullptr) {
    BDBMS_ASSIGN_OR_RETURN(plan, PlanFromWhere(stmt,
                                               /*allow_index_only=*/true));
  }

  // Estimate helper for the tuple-in/tuple-out nodes above the join.
  auto stacked = [](PlanNodePtr child, auto make, double rows,
                    double added_cost) {
    double cst = child->est_cost() + added_cost;
    PlanNodePtr node = make(std::move(child));
    node->SetEstimate(rows, cst);
    return node;
  };

  bool has_aggregates = false;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->ContainsAggregate()) has_aggregates = true;
  }

  if (!stmt.group_by.empty() || has_aggregates) {
    if (stmt.star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with GROUP BY");
    }
    std::vector<size_t> key_columns;
    for (const std::string& col : stmt.group_by) {
      BDBMS_ASSIGN_OR_RETURN(size_t idx, BindColumn(plan->columns(), "", col));
      key_columns.push_back(idx);
    }
    std::vector<std::string> names;
    for (const SelectItem& item : stmt.items) {
      names.push_back(AggregateItemName(item));
    }
    double in_rows = plan->est_rows();
    double groups = stmt.group_by.empty()
                        ? 1.0
                        : ClampRows(in_rows * cost::kGroupFraction, in_rows);
    plan = stacked(
        std::move(plan),
        [&](PlanNodePtr c) -> PlanNodePtr {
          return std::make_unique<HashAggregateNode>(
              std::move(c), &stmt, std::move(key_columns), std::move(names));
        },
        groups, in_rows * cost::kHashBuild);
  } else if (!stmt.star) {
    // Expand qualifier.* items, resolve direct columns and PROMOTE lists.
    const std::vector<BoundColumn>& in_cols = plan->columns();
    std::vector<ProjectNode::Item> items;
    std::vector<std::vector<size_t>> promote_of_item(stmt.items.size());
    std::vector<size_t> direct_use_count(in_cols.size(), 0);
    std::vector<std::pair<size_t, size_t>> item_of_output;  // (stmt item, out)
    for (size_t s = 0; s < stmt.items.size(); ++s) {
      const SelectItem& item = stmt.items[s];
      const Expr& e = *item.expr;
      for (const std::string& col : item.promote_columns) {
        BDBMS_ASSIGN_OR_RETURN(size_t idx, BindColumn(in_cols, "", col));
        promote_of_item[s].push_back(idx);
      }
      if (e.kind == ExprKind::kColumnRef && e.column == "*") {
        for (size_t i = 0; i < in_cols.size(); ++i) {
          if (in_cols[i].qualifier != e.qualifier) continue;
          items.push_back({true, i, nullptr, in_cols[i].name, {}, ""});
          ++direct_use_count[i];
          item_of_output.emplace_back(s, items.size() - 1);
        }
        continue;
      }
      if (e.kind == ExprKind::kColumnRef) {
        BDBMS_ASSIGN_OR_RETURN(size_t idx,
                               BindColumn(in_cols, e.qualifier, e.column));
        items.push_back({true, idx, nullptr,
                         item.alias.empty() ? in_cols[idx].name : item.alias,
                         {},
                         ""});
        ++direct_use_count[idx];
        item_of_output.emplace_back(s, items.size() - 1);
        continue;
      }
      items.push_back({false, 0, item.expr.get(),
                       item.alias.empty() ? "expr" : item.alias, {}, ""});
      item_of_output.emplace_back(s, items.size() - 1);
    }
    // Route PROMOTE through a dedicated node when the target input column
    // is projected exactly once; otherwise merge inline during projection
    // so other projections of the same column stay unaffected.
    std::vector<PromoteNode::Mapping> mappings;
    for (const auto& [s, out] : item_of_output) {
      if (promote_of_item[s].empty()) continue;
      ProjectNode::Item& it = items[out];
      if (it.is_direct && direct_use_count[it.direct_index] == 1) {
        mappings.emplace_back(it.direct_index, promote_of_item[s]);
      } else {
        it.promote_sources = promote_of_item[s];
      }
    }
    if (!mappings.empty()) {
      double rows = plan->est_rows();
      plan = stacked(
          std::move(plan),
          [&](PlanNodePtr c) -> PlanNodePtr {
            return std::make_unique<PromoteNode>(std::move(c),
                                                 std::move(mappings));
          },
          rows, rows * cost::kPipeTuple);
    }
    double rows = plan->est_rows();
    plan = stacked(
        std::move(plan),
        [&](PlanNodePtr c) -> PlanNodePtr {
          return std::make_unique<ProjectNode>(std::move(c),
                                               std::move(items));
        },
        rows, rows * cost::kPipeTuple);
  }

  if (stmt.distinct) {
    double rows = plan->est_rows();
    plan = stacked(
        std::move(plan),
        [](PlanNodePtr c) -> PlanNodePtr {
          return std::make_unique<DistinctNode>(std::move(c));
        },
        rows, rows * cost::kHashBuild);
  }
  if (stmt.filter) {
    double rows = plan->est_rows();
    plan = stacked(
        std::move(plan),
        [&](PlanNodePtr c) -> PlanNodePtr {
          return std::make_unique<AnnotFilterNode>(std::move(c),
                                                   stmt.filter.get());
        },
        rows, rows * cost::kFilterTuple);
  }
  // The chain-last SELECT's ORDER BY/LIMIT are the trailing clauses of
  // the whole set operation; the outermost level applies them to the
  // combination, so they are skipped here instead of sorting/capping the
  // branch twice.
  auto sort_cost = [](double rows) {
    return rows * std::log2(std::max(rows, 2.0)) * cost::kSortTuple;
  };
  auto build_sort_keys = [](const std::vector<OrderKey>& order_by,
                            const std::vector<BoundColumn>& columns)
      -> Result<std::vector<SortNode::Key>> {
    std::vector<SortNode::Key> keys;
    for (const OrderKey& key : order_by) {
      SortNode::Key k;
      k.descending = key.descending;
      if (key.expr != nullptr) {
        k.expr = key.expr.get();
        // Like bare keys, expression keys read the projected output;
        // surface unknown columns at plan time, not mid-sort.
        std::vector<const Expr*> refs;
        CollectColumnRefs(key.expr.get(), &refs);
        for (const Expr* ref : refs) {
          BDBMS_ASSIGN_OR_RETURN(
              size_t idx, BindColumn(columns, ref->qualifier, ref->column));
          (void)idx;
        }
      } else {
        BDBMS_ASSIGN_OR_RETURN(k.column, BindColumn(columns, "", key.column));
      }
      keys.push_back(k);
    }
    return keys;
  };
  bool is_chain_last = as_set_rhs && stmt.set_op == SetOpKind::kNone;
  if (!stmt.order_by.empty() && !is_chain_last && !order_consumed) {
    BDBMS_ASSIGN_OR_RETURN(std::vector<SortNode::Key> keys,
                           build_sort_keys(stmt.order_by, plan->columns()));
    double rows = plan->est_rows();
    plan = stacked(
        std::move(plan),
        [&](PlanNodePtr c) -> PlanNodePtr {
          return std::make_unique<SortNode>(std::move(c), std::move(keys));
        },
        rows, sort_cost(rows));
  }
  if (stmt.limit.has_value() && as_set_rhs && !is_chain_last) {
    // `... UNION SELECT ... LIMIT n UNION ...`: neither a branch cap nor
    // the trailing clause — reject instead of silently dropping it.
    return Status::NotSupported(
        "LIMIT inside a set-operation branch is not supported; apply it "
        "after the last SELECT");
  }
  if (stmt.limit.has_value() && !as_set_rhs) {
    double rows =
        std::min(plan->est_rows(), static_cast<double>(*stmt.limit));
    plan = stacked(
        std::move(plan),
        [&](PlanNodePtr c) -> PlanNodePtr {
          return std::make_unique<LimitNode>(std::move(c), *stmt.limit);
        },
        rows, 0.0);
  }

  if (stmt.set_op != SetOpKind::kNone) {
    BDBMS_ASSIGN_OR_RETURN(PlanNodePtr rhs,
                           PlanSelectImpl(*stmt.set_rhs, /*as_set_rhs=*/true));
    double l = plan->est_rows(), r = rhs->est_rows();
    double rows = l + r;
    if (stmt.set_op == SetOpKind::kIntersect) rows = std::min(l, r);
    if (stmt.set_op == SetOpKind::kExcept) rows = l;
    double cst =
        plan->est_cost() + rhs->est_cost() + (l + r) * cost::kHashBuild;
    plan = std::make_unique<SetOpNode>(stmt.set_op, std::move(plan),
                                       std::move(rhs));
    plan->SetEstimate(rows, cst);
    // A trailing ORDER BY / LIMIT written after the set operations parses
    // into the last SELECT of the (right-nested) chain; per standard SQL
    // they apply to the whole combination, so only the outermost level
    // applies them, reading them off the chain's last SELECT.
    if (!as_set_rhs) {
      const SelectStmt* last = stmt.set_rhs.get();
      while (last->set_op != SetOpKind::kNone) last = last->set_rhs.get();
      if (!last->order_by.empty()) {
        BDBMS_ASSIGN_OR_RETURN(
            std::vector<SortNode::Key> keys,
            build_sort_keys(last->order_by, plan->columns()));
        double srows = plan->est_rows();
        plan = stacked(
            std::move(plan),
            [&](PlanNodePtr c) -> PlanNodePtr {
              return std::make_unique<SortNode>(std::move(c),
                                                std::move(keys));
            },
            srows, sort_cost(srows));
      }
      if (last->limit.has_value()) {
        double lrows =
            std::min(plan->est_rows(), static_cast<double>(*last->limit));
        plan = stacked(
            std::move(plan),
            [&](PlanNodePtr c) -> PlanNodePtr {
              return std::make_unique<LimitNode>(std::move(c), *last->limit);
            },
            lrows, 0.0);
      }
    }
  }
  return plan;
}

Result<PlanNodePtr> Planner::PlanSelect(const SelectStmt& stmt) {
  return PlanSelectImpl(stmt, /*as_set_rhs=*/false);
}

Result<std::string> Planner::ExplainStatement(const Statement& stmt) {
  if (const auto* sel = std::get_if<SelectStmt>(&stmt.node)) {
    BDBMS_ASSIGN_OR_RETURN(PlanNodePtr plan, PlanSelect(*sel));
    return ExplainPlan(*plan);
  }
  auto indent = [](const std::string& text) {
    std::string out;
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      out += "  " + text.substr(start, end - start) + "\n";
      start = end + 1;
    }
    return out;
  };
  if (const auto* upd = std::get_if<UpdateStmt>(&stmt.node)) {
    if (!ctx_->catalog->HasTable(upd->table)) {
      return Status::NotFound("no table " + upd->table);
    }
    // Same privilege the execution itself would demand.
    BDBMS_RETURN_IF_ERROR(
        ctx_->access->Check(user_, upd->table, Privilege::kUpdate));
    BDBMS_ASSIGN_OR_RETURN(PlanNodePtr plan,
                           PlanDmlScan(upd->table, upd->where.get()));
    std::string out = "Update " + upd->table + " SET ";
    for (size_t i = 0; i < upd->assignments.size(); ++i) {
      if (i > 0) out += ", ";
      out += upd->assignments[i].first;
    }
    return out + "\n" + indent(ExplainPlan(*plan));
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt.node)) {
    if (!ctx_->catalog->HasTable(del->table)) {
      return Status::NotFound("no table " + del->table);
    }
    BDBMS_RETURN_IF_ERROR(
        ctx_->access->Check(user_, del->table, Privilege::kDelete));
    BDBMS_ASSIGN_OR_RETURN(PlanNodePtr plan,
                           PlanDmlScan(del->table, del->where.get()));
    return "Delete " + del->table + "\n" + indent(ExplainPlan(*plan));
  }
  return Status::NotSupported("EXPLAIN supports SELECT, UPDATE and DELETE");
}

}  // namespace bdbms
