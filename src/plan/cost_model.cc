#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>

namespace bdbms {

namespace {

double Clamp01(double s) { return std::clamp(s, 0.0, 1.0); }

// Fraction of non-null values below `v`, histogram first, then linear
// interpolation between the analyzed extremes.
std::optional<double> FractionBelow(const ColumnStats& stats, double v) {
  if (stats.histogram.has_value() && stats.histogram->total > 0) {
    return stats.histogram->FractionBelow(v);
  }
  if (!stats.min.has_value() || !stats.max.has_value()) return std::nullopt;
  if (!stats.min->is_numeric() || !stats.max->is_numeric()) {
    return std::nullopt;
  }
  double lo = stats.min->as_double(), hi = stats.max->as_double();
  if (v <= lo) return 0.0;
  if (v >= hi) return 1.0;
  return hi > lo ? (v - lo) / (hi - lo) : 1.0;
}

// `column <op> literal` with the column on the left (callers flip).
double ComparisonSelectivity(BinOp op, const ColumnStats* stats,
                             const Value& literal) {
  if (literal.is_null()) return 0.0;  // comparisons with NULL are false
  switch (op) {
    case BinOp::kEq:
      return EqSelectivity(stats, literal);
    case BinOp::kNe:
      return Clamp01(1.0 - EqSelectivity(stats, literal));
    case BinOp::kLt:
    case BinOp::kLe: {
      IndexBound hi{literal, op == BinOp::kLe};
      return RangeSelectivity(stats, std::nullopt, hi);
    }
    case BinOp::kGt:
    case BinOp::kGe: {
      IndexBound lo{literal, op == BinOp::kGe};
      return RangeSelectivity(stats, lo, std::nullopt);
    }
    default:
      return cost::kDefaultSel;
  }
}

BinOp FlipOp(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;
  }
}

}  // namespace

double IndexProbeCost(double rows) {
  return std::log2(std::max(rows, 1.0) + 1.0);
}

double SeqScanCost(double rows) { return rows * cost::kSeqTuple; }

double IndexScanCost(double table_rows, double matching_rows) {
  return IndexProbeCost(table_rows) + matching_rows * cost::kRandomFetch;
}

double IndexOnlyScanCost(double table_rows, double matching_rows) {
  return IndexProbeCost(table_rows) + matching_rows * cost::kIndexKeyTuple;
}

double ClampRows(double rows, double input_rows) {
  if (input_rows <= 0.0) return 0.0;
  return std::max(rows, 1.0);
}

double EqSelectivity(const ColumnStats* stats, const Value& probe) {
  if (stats == nullptr || stats->ndv == 0) return cost::kDefaultEq;
  if (stats->min.has_value() && probe.Compare(*stats->min) < 0) return 0.0;
  if (stats->max.has_value() && probe.Compare(*stats->max) > 0) return 0.0;
  return Clamp01(1.0 / static_cast<double>(stats->ndv));
}

double RangeSelectivity(const ColumnStats* stats,
                        const std::optional<IndexBound>& lo,
                        const std::optional<IndexBound>& hi) {
  double below_hi = 1.0, below_lo = 0.0;
  bool interpolated = false;
  if (stats != nullptr) {
    if (hi.has_value() && hi->value.is_numeric()) {
      if (auto f = FractionBelow(*stats, hi->value.as_double())) {
        below_hi = *f;
        interpolated = true;
      }
    }
    if (lo.has_value() && lo->value.is_numeric()) {
      if (auto f = FractionBelow(*stats, lo->value.as_double())) {
        below_lo = *f;
        interpolated = true;
      }
    }
  }
  if (interpolated) return Clamp01(below_hi - below_lo);
  // No usable statistics: the default per bounded side.
  double s = 1.0;
  if (lo.has_value()) s *= cost::kDefaultRange;
  if (hi.has_value()) s *= cost::kDefaultRange;
  return s;
}

double EstimateConjunctSelectivity(const Expr& e,
                                   const StatsResolver& resolver) {
  if (e.kind == ExprKind::kBinary) {
    switch (e.bin_op) {
      case BinOp::kAnd:
        return Clamp01(EstimateConjunctSelectivity(*e.left, resolver) *
                       EstimateConjunctSelectivity(*e.right, resolver));
      case BinOp::kOr: {
        double a = EstimateConjunctSelectivity(*e.left, resolver);
        double b = EstimateConjunctSelectivity(*e.right, resolver);
        return Clamp01(a + b - a * b);
      }
      case BinOp::kLike:
        return cost::kDefaultLike;
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe: {
        const Expr* col = e.left.get();
        const Expr* lit = e.right.get();
        BinOp op = e.bin_op;
        if (col->kind != ExprKind::kColumnRef) {
          std::swap(col, lit);
          op = FlipOp(op);
        }
        if (col->kind != ExprKind::kColumnRef ||
            lit->kind != ExprKind::kLiteral) {
          return cost::kDefaultSel;
        }
        return ComparisonSelectivity(op, resolver(*col), lit->literal);
      }
      default:
        return cost::kDefaultSel;
    }
  }
  if (e.kind == ExprKind::kUnary) {
    switch (e.un_op) {
      case UnOp::kNot:
        return Clamp01(1.0 -
                       EstimateConjunctSelectivity(*e.child, resolver));
      case UnOp::kIsNull:
      case UnOp::kIsNotNull: {
        const ColumnStats* stats =
            e.child->kind == ExprKind::kColumnRef ? resolver(*e.child)
                                                  : nullptr;
        double null_frac = cost::kDefaultEq;
        if (stats != nullptr && stats->non_null + stats->null_count > 0) {
          null_frac = static_cast<double>(stats->null_count) /
                      static_cast<double>(stats->non_null + stats->null_count);
        }
        return e.un_op == UnOp::kIsNull ? Clamp01(null_frac)
                                        : Clamp01(1.0 - null_frac);
      }
      default:
        return cost::kDefaultSel;
    }
  }
  return cost::kDefaultSel;
}

}  // namespace bdbms
