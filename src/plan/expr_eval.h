#ifndef BDBMS_PLAN_EXPR_EVAL_H_
#define BDBMS_PLAN_EXPR_EVAL_H_

#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "exec/query_result.h"
#include "plan/plan_tuple.h"
#include "sql/ast.h"

namespace bdbms {

// Expression evaluation shared by the plan operators and the executor's
// DML paths. All contexts reduce to one generic recursive evaluator that
// differs only in how column references, annotation attributes and
// aggregates resolve.

// Scalar context: column refs resolve against `columns`/`tuple`;
// annotation attributes and aggregates are rejected. With an empty column
// list this doubles as the constant context of INSERT VALUES expressions.
Result<Value> EvalScalar(const Expr& e, const std::vector<BoundColumn>& columns,
                         const PlanTuple& tuple);

// Annotation context: VALUE/CATEGORY/AUTHOR resolve against one
// annotation; column refs and aggregates are rejected (AWHERE/AHAVING/
// FILTER conditions).
Result<Value> EvalAnnExpr(const Expr& e, const ResultAnnotation& ann);

// True if any annotation attached to the tuple satisfies `cond`.
Result<bool> TupleAnnMatch(const Expr& cond, const PlanTuple& tuple);

// Group context: aggregates evaluate over `group`, bare columns take the
// group's first tuple (HAVING and aggregate select items).
Result<Value> EvalGroupExpr(const Expr& e,
                            const std::vector<BoundColumn>& columns,
                            const std::vector<const PlanTuple*>& group);

// SQL truthiness: NULL is false, numerics compare against zero, anything
// else is an error.
Result<bool> Truthy(const Value& v);

// SQL LIKE with % (any run) and _ (any one char).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace bdbms

#endif  // BDBMS_PLAN_EXPR_EVAL_H_
